"""Public application-facing API.

Two entry points:

* :class:`MeshNode` — one LoRa mesh node (a thin, documented alias of the
  full :class:`~repro.net.mesher.MesherNode` service),
* :class:`MeshNetwork` — builds a whole simulated deployment in one call:
  kernel, channel model, medium, and one started node per position.  This
  is what the examples, tests, and benchmarks use.

Quickstart::

    from repro.net.api import MeshNetwork
    from repro.topology.placement import line_positions

    net = MeshNetwork.from_positions(line_positions(4, spacing_m=120.0), seed=7)
    net.run_until_converged(timeout_s=3600)
    alice, bob = net.addresses[0], net.addresses[-1]
    net.node(alice).send_datagram(bob, b"hello mesh")
    net.run(for_s=60)
    print(net.node(bob).receive())
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.medium.channel import LossInjector, Medium
from repro.net.config import MesherConfig
from repro.net.mesher import AppMessage, MesherNode
from repro.phy.link import LinkBudget
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel, Position
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.trace.events import TraceRecorder

logger = logging.getLogger(__name__)

#: The first auto-assigned node address (then +1 per node).
FIRST_ADDRESS = 0x0001


class MeshNode(MesherNode):
    """A LoRa mesh node — see :class:`repro.net.mesher.MesherNode`.

    The public surface applications use:

    * :meth:`~repro.net.mesher.MesherNode.send_datagram` — unreliable,
    * :meth:`~repro.net.mesher.MesherNode.send_reliable` — any size,
      fragmented and repaired transparently,
    * :meth:`~repro.net.mesher.MesherNode.broadcast` — one-hop broadcast,
    * :meth:`~repro.net.mesher.MesherNode.receive` / ``on_message`` —
      consuming delivered :class:`AppMessage` records,
    * :attr:`~repro.net.mesher.MesherNode.table` — the live routing table.
    """


class MeshNetwork:
    """A complete simulated LoRa mesh deployment.

    Prefer the :meth:`from_positions` constructor; the raw ``__init__``
    is for callers that need to supply their own medium or kernel.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        rngs: RngRegistry,
        trace: TraceRecorder,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.rngs = rngs
        self.trace = trace
        self._nodes: Dict[int, MeshNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_positions(
        cls,
        positions: Sequence[Position],
        *,
        config: Optional[MesherConfig] = None,
        configs: Optional[Sequence[Optional[MesherConfig]]] = None,
        seed: int = 0,
        pathloss: Optional[PathLossModel] = None,
        pathloss_factory: Optional[Callable[[Simulator, RngRegistry], PathLossModel]] = None,
        addresses: Optional[Sequence[int]] = None,
        trace_enabled: bool = True,
        loss_injector: Optional[LossInjector] = None,
        autostart: bool = True,
    ) -> "MeshNetwork":
        """Build a network with one node per position.

        ``addresses`` defaults to ``0x0001, 0x0002, ...`` in position
        order.  ``pathloss`` defaults to the measurement-fit log-distance
        model (≈135 m SF7 range at 14 dBm), giving multi-hop structure at
        ~120 m spacing.  ``configs`` overrides ``config`` per node (one
        entry per position, None entries fall back to ``config``) — used
        e.g. to give a single node the gateway role.
        """
        if not positions:
            raise ValueError("a network needs at least one node position")
        sim = Simulator()
        rngs = RngRegistry(seed)
        trace = TraceRecorder(enabled=trace_enabled)
        if pathloss is not None and pathloss_factory is not None:
            raise ValueError("pass either pathloss or pathloss_factory, not both")
        if pathloss_factory is not None:
            # Time-varying channels (block fading) need the kernel clock,
            # which only exists now — hence the factory indirection.
            model: PathLossModel = pathloss_factory(sim, rngs)
        else:
            model = pathloss if pathloss is not None else LogDistancePathLoss()
        medium = Medium(sim, LinkBudget(model), loss_injector=loss_injector)
        net = cls(sim, medium, rngs, trace)
        addrs = (
            list(addresses)
            if addresses is not None
            else [FIRST_ADDRESS + i for i in range(len(positions))]
        )
        if len(addrs) != len(positions):
            raise ValueError("addresses and positions must have equal length")
        if len(set(addrs)) != len(addrs):
            raise ValueError("node addresses must be unique")
        if configs is not None and len(configs) != len(positions):
            raise ValueError("configs and positions must have equal length")
        for i, (address, position) in enumerate(zip(addrs, positions)):
            node_config = configs[i] if configs is not None and configs[i] is not None else config
            net.add_node(address, position, config=node_config)
        if autostart:
            net.start()
        return net

    def add_node(
        self,
        address: int,
        position: Position,
        *,
        config: Optional[MesherConfig] = None,
        name: str = "",
    ) -> MeshNode:
        """Attach one more node (late joiners are a demo scenario)."""
        node = MeshNode(
            self.sim,
            self.medium,
            address,
            position,
            config,
            rngs=self.rngs,
            trace=self.trace,
            name=name,
        )
        self._nodes[address] = node
        return node

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> List[int]:
        """Node addresses in insertion order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[MeshNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def node(self, address: int) -> MeshNode:
        """The node with the given address (KeyError if unknown)."""
        return self._nodes[address]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every node that is not yet running."""
        for node in self._nodes.values():
            node.start()

    def run(self, *, until: Optional[float] = None, for_s: Optional[float] = None) -> float:
        """Advance the simulation to ``until`` or by ``for_s`` seconds."""
        if (until is None) == (for_s is None):
            raise ValueError("pass exactly one of until= or for_s=")
        horizon = until if until is not None else self.sim.now + float(for_s)  # type: ignore[arg-type]
        return self.sim.run(until=horizon)

    def run_until_converged(
        self,
        *,
        timeout_s: float,
        check_period_s: float = 10.0,
        require_all: bool = True,
    ) -> Optional[float]:
        """Run until every node can route to every other node.

        Returns the convergence time (simulated seconds from now), or
        None when ``timeout_s`` elapses first.  With ``require_all=False``
        it waits only for the first and last node to reach each other.
        """
        deadline = self.sim.now + timeout_s
        start = self.sim.now
        while self.sim.now < deadline:
            horizon = min(self.sim.now + check_period_s, deadline)
            self.sim.run(until=horizon)
            if self.converged(require_all=require_all):
                return self.sim.now - start
        return None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def converged(self, *, require_all: bool = True) -> bool:
        """Whether routing state covers the whole network.

        Full convergence: every live node has a route to every other live
        node.  Endpoint convergence (``require_all=False``): the first
        and last nodes can reach each other.
        """
        live = [n for n in self._nodes.values() if n.radio.powered and n.started]
        if len(live) < 2:
            return True
        if require_all:
            # O(N) pre-check before the O(N²) pair verification: a table
            # smaller than N-1 entries cannot cover every other node, and
            # during flooding that is the common case — periodic converged()
            # polls on large networks would otherwise pay the full scan on
            # every check.
            needed = len(live) - 1
            for node in live:
                if node.table.size < needed:
                    return False
            # Columnar tables answer the whole-pair question with one
            # vectorized probe per node (covers_all); the scalar table
            # falls back to the per-pair has_route scan.
            addresses = None
            for node in live:
                covers_all = getattr(node.table, "covers_all", None)
                if covers_all is not None:
                    if addresses is None:
                        from repro.net.routing_store import as_address_array

                        addresses = as_address_array([n.address for n in live])
                    if not covers_all(addresses):
                        return False
                    continue
                for other in live:
                    if other.address != node.address and not node.table.has_route(other.address):
                        return False
            return True
        first, last = live[0], live[-1]
        return first.table.has_route(last.address) and last.table.has_route(first.address)

    def coverage(self) -> float:
        """Fraction of live ordered node pairs with a route (0..1)."""
        live = [n for n in self._nodes.values() if n.radio.powered and n.started]
        if len(live) < 2:
            return 1.0
        pairs = 0
        routed = 0
        for node in live:
            for other in live:
                if other.address == node.address:
                    continue
                pairs += 1
                if node.table.has_route(other.address):
                    routed += 1
        return routed / pairs

    def total_frames_sent(self) -> int:
        """Frames put on the air across the whole network."""
        return sum(n.stats.frames_sent for n in self._nodes.values())

    def total_bytes_sent(self) -> int:
        """Bytes put on the air across the whole network."""
        return sum(n.stats.bytes_sent for n in self._nodes.values())

    def total_airtime_s(self) -> float:
        """Cumulative transmit airtime across all nodes (seconds)."""
        return sum(n.radio.tx_airtime_s for n in self._nodes.values())

    def describe(self) -> str:
        """Multi-line routing-table dump of the whole network (the demo's
        serial-console view)."""
        return "\n".join(node.table.format() for node in self._nodes.values())
