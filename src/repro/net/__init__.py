"""LoRaMesher — the paper's core contribution.

This package is the Python reproduction of the LoRaMesher library: a
distance-vector mesh routing protocol that runs directly on LoRa nodes,
letting any two nodes exchange data packets while the rest of the mesh
forwards for them, with no gateway or LoRaWAN infrastructure.

Layout
------
* :mod:`repro.net.addresses` — 16-bit node addresses derived from MACs,
* :mod:`repro.net.packets` / :mod:`repro.net.serialization` — byte-exact
  packet formats (routing, data, reliable-stream control),
* :mod:`repro.net.routing_table` — the distance-vector routing table
  (scalar reference) and the implementation factory,
* :mod:`repro.net.routing_store` — the columnar (numpy) routing store,
* :mod:`repro.net.queues` — fixed-capacity packet queues (FreeRTOS-style),
* :mod:`repro.net.hello` — periodic routing-table dissemination,
* :mod:`repro.net.forwarding` — the data plane (via-based hop forwarding),
* :mod:`repro.net.reliable` — large-payload SYNC/XL_DATA/LOST/ACK streams,
* :mod:`repro.net.stream` — connection-oriented streams (SYN/OPEN/FIN)
  with sliding-window flow control over the reliable transport,
* :mod:`repro.net.mesher` — the node service tying it all together,
* :mod:`repro.net.api` — the public application-facing API.
"""

from repro.net.addresses import BROADCAST_ADDRESS, address_from_mac, format_address
from repro.net.config import MesherConfig
from repro.net.packets import (
    AckPacket,
    DataPacket,
    LostPacket,
    PacketType,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.net.routing_table import RouteEntry, RoutingTable, make_routing_table
from repro.net.stream import Stream, StreamManager, StreamState, StreamStats
from repro.net.api import AppMessage, MeshNode, MeshNetwork

__all__ = [
    "BROADCAST_ADDRESS",
    "address_from_mac",
    "format_address",
    "MesherConfig",
    "PacketType",
    "RoutingEntry",
    "RoutingPacket",
    "DataPacket",
    "AckPacket",
    "LostPacket",
    "SyncPacket",
    "XLDataPacket",
    "RouteEntry",
    "RoutingTable",
    "make_routing_table",
    "MeshNode",
    "MeshNetwork",
    "AppMessage",
    "Stream",
    "StreamManager",
    "StreamState",
    "StreamStats",
]
