"""Connection-oriented streams over the reliable transport.

The reliable layer (:mod:`repro.net.reliable`) moves one payload at a
time: NEED_ACK singles with pure ACKs, SYNC/XL_DATA fragment trains with
NACK-style LOST chasing.  This module adds the next rung — the
connection abstraction the Meshtastic bridge prototypes for the same
radio class: a :class:`Stream` with an explicit lifecycle
(SYN → OPEN → FIN), sliding-window flow control over in-flight reliable
messages, strictly in-order exactly-once delivery, and per-stream
SRTT/RTTVAR round-trip tracking.

Layering
--------
Every stream message is one reliable payload prefixed with a 6-byte
header (magic, type+direction, stream id, message seq).  The
:class:`StreamManager` claims those payloads through the mesher's
``on_reliable_consume`` hook before they reach the application inbox;
anything without the magic byte passes through untouched.  Because each
message rides the reliable layer, the *ACK/NACK selection is automatic*:
messages that fit one frame use the single-ACK path, larger ones the
LOST-driven selective-repeat path — the stream never re-implements
retransmission.

Retransmit timing is likewise owned by the transport: the per-stream
estimator here is fed by the very ACK round-trips that feed the
transport's per-destination estimator (``ReliableTransport.observe_rtt``)
driving the adaptive retransmit timer; the stream copy exists so flows
can be compared and exported individually.

Flow control is a sliding window: at most ``MesherConfig.stream_window``
reliable messages in flight per stream; further ``send()`` calls queue
and drain as transport completions arrive.  A transport-level failure
(retry budget exhausted) resets the stream — the stream layer never
retries what the transport already gave up on.

Both directions of a conversation are independent streams (one opened by
each side); a FIN therefore closes the whole stream, there is no
half-close state.
"""

from __future__ import annotations

import enum
import logging
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.reliable import RttEstimator

logger = logging.getLogger(__name__)

#: First payload byte that marks a stream-layer message.
STREAM_MAGIC = 0xD5
#: Header layout: magic, type (with direction bit), stream id, msg seq.
_HEADER = struct.Struct(">BBHH")
HEADER_SIZE = _HEADER.size

#: Set on every message sent by the stream's initiator; receivers use it
#: to pick the right namespace (ids are allocated per initiator, so an
#: accepted stream #7 and a locally opened stream #7 can coexist).
_FROM_INITIATOR = 0x80
_TYPE_MASK = 0x7F

MSG_SYN = 1
MSG_ACCEPT = 2
MSG_DATA = 3
MSG_FIN = 4
MSG_RESET = 5

_TYPE_NAMES = {
    MSG_SYN: "syn",
    MSG_ACCEPT: "accept",
    MSG_DATA: "data",
    MSG_FIN: "fin",
    MSG_RESET: "reset",
}


class StreamState(enum.Enum):
    """Lifecycle of one stream endpoint."""

    SYN_SENT = "syn_sent"  # initiator: SYN in flight, not yet accepted
    OPEN = "open"
    FIN_SENT = "fin_sent"  # FIN in flight after the send queue drained
    CLOSED = "closed"


@dataclass
class StreamStats:
    """Per-stream counters and round-trip tracking."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    duplicates_dropped: int = 0
    reordered_buffered: int = 0
    window_stalls: int = 0
    max_inflight: int = 0
    rtt: RttEstimator = field(default_factory=RttEstimator)
    rtt_max_s: float = 0.0

    def observe_rtt(self, sample_s: float) -> None:
        self.rtt.observe(sample_s)
        if sample_s > self.rtt_max_s:
            self.rtt_max_s = sample_s

    @property
    def srtt_s(self) -> Optional[float]:
        return self.rtt.srtt if self.rtt.samples else None


def encode_message(msg_type: int, stream_id: int, msg_seq: int, payload: bytes, *, from_initiator: bool) -> bytes:
    type_byte = msg_type | (_FROM_INITIATOR if from_initiator else 0)
    return _HEADER.pack(STREAM_MAGIC, type_byte, stream_id, msg_seq) + payload


def decode_message(payload: bytes) -> Optional[Tuple[int, int, int, bool, bytes]]:
    """``(type, stream_id, msg_seq, from_initiator, body)`` or None."""
    if len(payload) < HEADER_SIZE or payload[0] != STREAM_MAGIC:
        return None
    magic, type_byte, stream_id, msg_seq = _HEADER.unpack_from(payload)
    msg_type = type_byte & _TYPE_MASK
    if msg_type not in _TYPE_NAMES:
        return None
    return msg_type, stream_id, msg_seq, bool(type_byte & _FROM_INITIATOR), payload[HEADER_SIZE:]


class Stream:
    """One endpoint of a connection-oriented stream.

    Created by :meth:`StreamManager.open` (initiator side) or handed to
    the manager's ``on_accept`` callback (responder side).  ``send()``
    queues a message; the window pump keeps at most ``stream_window``
    reliable messages in flight.  ``close()`` flushes the queue, sends a
    FIN, and fires ``on_close`` once the FIN is acknowledged.
    """

    def __init__(
        self,
        manager: "StreamManager",
        peer: int,
        stream_id: int,
        *,
        initiator: bool,
    ) -> None:
        self._manager = manager
        self.peer = peer
        self.stream_id = stream_id
        self.initiator = initiator
        self.state = StreamState.SYN_SENT if initiator else StreamState.OPEN
        self.close_reason: Optional[str] = None
        self.stats = StreamStats()
        #: ``(stream, payload)`` per in-order delivered message.
        self.on_message: Optional[Callable[["Stream", bytes], None]] = None
        #: ``(stream)`` once the peer accepts (initiator side only).
        self.on_open: Optional[Callable[["Stream"], None]] = None
        #: ``(stream, reason)`` exactly once on close/reset/failure.
        self.on_close: Optional[Callable[["Stream", str], None]] = None

        self._send_queue: Deque[bytes] = deque()
        self._inflight: Dict[int, float] = {}  # msg_seq -> sent_at
        self._next_seq = 0
        self._expected_seq = 0
        self._reorder: Dict[int, bytes] = {}
        self._closing = False
        self._fin_sent = False
        self._opened_at = manager._sim.now
        self._syn_sent_at: Optional[float] = None

    # -- public API ----------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self.state in (StreamState.SYN_SENT, StreamState.OPEN)

    @property
    def pending(self) -> int:
        """Messages queued or in flight, not yet acknowledged."""
        return len(self._send_queue) + len(self._inflight)

    def send(self, payload: bytes) -> None:
        """Queue one message for in-order delivery to the peer."""
        if not self.is_open or self._closing:
            raise RuntimeError(f"stream to {self.peer:#06x} is {self.state.value}")
        if self._next_seq + len(self._send_queue) >= 0xFFFF:
            raise RuntimeError("stream message sequence space exhausted (65535)")
        self._send_queue.append(bytes(payload))
        self._pump()

    def close(self) -> None:
        """Flush queued messages, then FIN.  Idempotent."""
        if self.state is StreamState.CLOSED or self._closing:
            return
        self._closing = True
        self._pump()

    # -- internals -----------------------------------------------------
    def _pump(self) -> None:
        if self.state is not StreamState.OPEN:
            return  # SYN_SENT queues until ACCEPT; closed streams are inert
        window = self._manager.window
        while self._send_queue and len(self._inflight) < window:
            seq = self._next_seq
            self._next_seq += 1
            payload = self._send_queue.popleft()
            self._inflight[seq] = self._manager._sim.now
            self.stats.max_inflight = max(self.stats.max_inflight, len(self._inflight))
            self.stats.messages_sent += 1
            self.stats.bytes_sent += len(payload)
            self._manager._send_message(
                self, MSG_DATA, seq, payload,
                lambda ok, why, seq=seq: self._data_complete(seq, ok, why),
            )
        if self._send_queue and len(self._inflight) >= window:
            self.stats.window_stalls += 1
        if (
            self._closing
            and not self._fin_sent
            and not self._send_queue
            and not self._inflight
        ):
            self._fin_sent = True
            self.state = StreamState.FIN_SENT
            self._manager._send_message(
                self, MSG_FIN, self._next_seq, b"",
                lambda ok, why: self._fin_complete(ok, why),
            )

    def _data_complete(self, seq: int, ok: bool, why: str) -> None:
        sent_at = self._inflight.pop(seq, None)
        if self.state is StreamState.CLOSED:
            return
        if not ok:
            # The transport exhausted its retry budget: the path is gone,
            # re-sending from here would just repeat the same loss.
            self._manager._reset_stream(self, f"transport: {why}")
            return
        if sent_at is not None:
            self.stats.observe_rtt(self._manager._sim.now - sent_at)
        self._pump()

    def _fin_complete(self, ok: bool, why: str) -> None:
        if self.state is StreamState.CLOSED:
            return
        self._manager._close_stream(self, "fin" if ok else f"transport: {why}")

    def _receive_data(self, msg_seq: int, body: bytes) -> None:
        if msg_seq < self._expected_seq or msg_seq in self._reorder:
            # The transport already dedups per (src, seq_id); this guards
            # the stream's own contract and surfaces any future break.
            self.stats.duplicates_dropped += 1
            self._manager._tap("duplicate", self, msg_seq)
            return
        self._reorder[msg_seq] = body
        if msg_seq != self._expected_seq:
            self.stats.reordered_buffered += 1
        while self._expected_seq in self._reorder:
            payload = self._reorder.pop(self._expected_seq)
            seq = self._expected_seq
            self._expected_seq += 1
            self.stats.messages_received += 1
            self.stats.bytes_received += len(payload)
            self._manager._tap("deliver", self, seq)
            if self.on_message is not None:
                self.on_message(self, payload)


class StreamManager:
    """Per-node endpoint registry for connection-oriented streams.

    Attaches to one :class:`~repro.net.mesher.MesherNode` via its
    ``on_reliable_consume`` hook.  ``open()`` initiates streams;
    ``on_accept`` (callable, optional) observes inbound ones — returning
    ``False`` from it refuses the stream with a RESET.
    """

    def __init__(self, node, *, window: Optional[int] = None) -> None:
        if node.on_reliable_consume is not None:
            raise RuntimeError(f"{node.name} already has a reliable-consume hook")
        self._node = node
        self._sim = node.sim
        self.window = window if window is not None else node.config.stream_window
        if self.window < 1:
            raise ValueError("window must be >= 1")
        node.on_reliable_consume = self._consume
        #: Discovery handle for observers (the invariant checker finds
        #: managers through this attribute when it taps a node).
        node.stream_manager = self
        self._next_stream_id = 0
        #: Streams this node initiated, keyed (peer, stream_id).
        self._initiated: Dict[Tuple[int, int], Stream] = {}
        #: Streams this node accepted, keyed (peer, stream_id).
        self._accepted: Dict[Tuple[int, int], Stream] = {}
        #: ``(stream) -> bool | None`` on every inbound SYN; None accepts.
        self.on_accept: Optional[Callable[[Stream], Optional[bool]]] = None
        #: Observer tap (see repro.verify): ``(kind, peer, stream_id,
        #: initiator_side, msg_seq)`` with kind in {"deliver",
        #: "duplicate", "open", "accept", "close", "reset"}.  ``deliver``
        #: fires per in-order app delivery — the STREAM_ORDERING invariant
        #: asserts its msg_seq is exactly-once and gapless per stream.
        self.on_stream_event: Optional[Callable[[str, int, int, bool, int], None]] = None

        # Counters
        self.streams_opened = 0
        self.streams_accepted = 0
        self.streams_closed = 0
        self.streams_reset = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.syn_refused = 0
        self.unclaimed_payloads = 0

    # -- opening -------------------------------------------------------
    def open(
        self,
        peer: int,
        *,
        on_message: Optional[Callable[[Stream, bytes], None]] = None,
        on_open: Optional[Callable[[Stream], None]] = None,
        on_close: Optional[Callable[[Stream, str], None]] = None,
    ) -> Stream:
        """Initiate a stream to ``peer``; returns it in SYN_SENT state."""
        stream_id = self._allocate_id(peer)
        stream = Stream(self, peer, stream_id, initiator=True)
        stream.on_message = on_message
        stream.on_open = on_open
        stream.on_close = on_close
        self._initiated[(peer, stream_id)] = stream
        self.streams_opened += 1
        stream._syn_sent_at = self._sim.now
        self._tap("open", stream, 0)
        self._send_message(
            stream, MSG_SYN, 0, b"",
            lambda ok, why, s=stream: self._syn_complete(s, ok, why),
        )
        return stream

    def _allocate_id(self, peer: int) -> int:
        for _ in range(0x10000):
            candidate = self._next_stream_id
            self._next_stream_id = (self._next_stream_id + 1) & 0xFFFF
            if (peer, candidate) not in self._initiated:
                return candidate
        raise RuntimeError("all 65536 stream ids to this peer are in use")

    def _syn_complete(self, stream: Stream, ok: bool, why: str) -> None:
        if stream.state is not StreamState.SYN_SENT:
            return  # ACCEPT already arrived, or the stream was reset
        if not ok:
            self._reset_stream(stream, f"syn failed: {why}")
        # On success we still wait for the peer's ACCEPT message: the
        # transport ACK only proves the SYN reached the peer's queue.

    # -- sending -------------------------------------------------------
    def _send_message(
        self,
        stream: Stream,
        msg_type: int,
        msg_seq: int,
        body: bytes,
        on_complete: Callable[[bool, str], None],
    ) -> None:
        payload = encode_message(
            msg_type, stream.stream_id, msg_seq, body, from_initiator=stream.initiator
        )
        if msg_type == MSG_DATA:
            self.messages_sent += 1
        self._node.reliable.send(stream.peer, payload, on_complete)

    # -- receiving -----------------------------------------------------
    def _consume(self, src: int, payload: bytes) -> bool:
        decoded = decode_message(payload)
        if decoded is None:
            self.unclaimed_payloads += 1
            return False
        msg_type, stream_id, msg_seq, from_initiator, body = decoded
        key = (src, stream_id)
        # A message from the stream's initiator lands in our accepted
        # namespace and vice versa.
        table = self._accepted if from_initiator else self._initiated
        if msg_type == MSG_SYN:
            self._handle_syn(src, stream_id, key)
            return True
        stream = table.get(key)
        if stream is None:
            if msg_type == MSG_DATA:
                # Stream unknown (reset locally, or a stale duplicate):
                # tell the sender to stop.
                self._send_control(src, stream_id, MSG_RESET, from_initiator=not from_initiator)
            return True
        if msg_type == MSG_ACCEPT:
            self._handle_accept(stream)
        elif msg_type == MSG_DATA:
            self.messages_received += 1
            stream._receive_data(msg_seq, body)
        elif msg_type == MSG_FIN:
            self._close_stream(stream, "fin")
        elif msg_type == MSG_RESET:
            self._reset_stream(stream, "peer reset", notify_peer=False)
        return True

    def _handle_syn(self, src: int, stream_id: int, key: Tuple[int, int]) -> None:
        existing = self._accepted.get(key)
        if existing is not None:
            # Duplicate SYN (the transport re-sent before our ACCEPT
            # landed): re-ACCEPT, the stream state already exists.
            self._send_control(src, stream_id, MSG_ACCEPT, from_initiator=False)
            return
        stream = Stream(self, src, stream_id, initiator=False)
        verdict = self.on_accept(stream) if self.on_accept is not None else None
        if verdict is False:
            self.syn_refused += 1
            self._send_control(src, stream_id, MSG_RESET, from_initiator=False)
            return
        self._accepted[key] = stream
        self.streams_accepted += 1
        self._tap("accept", stream, 0)
        self._send_control(src, stream_id, MSG_ACCEPT, from_initiator=False)

    def _handle_accept(self, stream: Stream) -> None:
        if stream.state is not StreamState.SYN_SENT:
            return  # duplicate ACCEPT
        stream.state = StreamState.OPEN
        if stream._syn_sent_at is not None:
            stream.stats.observe_rtt(self._sim.now - stream._syn_sent_at)
        if stream.on_open is not None:
            stream.on_open(stream)
        stream._pump()

    def _send_control(self, peer: int, stream_id: int, msg_type: int, *, from_initiator: bool) -> None:
        payload = encode_message(msg_type, stream_id, 0, b"", from_initiator=from_initiator)
        self._node.reliable.send(peer, payload, None)

    # -- teardown ------------------------------------------------------
    def _close_stream(self, stream: Stream, reason: str) -> None:
        if stream.state is StreamState.CLOSED:
            return
        stream.state = StreamState.CLOSED
        stream.close_reason = reason
        self._drop(stream)
        self.streams_closed += 1
        self._tap("close", stream, stream._expected_seq)
        if stream.on_close is not None:
            stream.on_close(stream, reason)

    def _reset_stream(self, stream: Stream, reason: str, *, notify_peer: bool = True) -> None:
        if stream.state is StreamState.CLOSED:
            return
        stream.state = StreamState.CLOSED
        stream.close_reason = reason
        self._drop(stream)
        self.streams_reset += 1
        self._tap("reset", stream, stream._expected_seq)
        if notify_peer:
            self._send_control(
                stream.peer, stream.stream_id, MSG_RESET, from_initiator=stream.initiator
            )
        if stream.on_close is not None:
            stream.on_close(stream, reason)

    def _drop(self, stream: Stream) -> None:
        table = self._initiated if stream.initiator else self._accepted
        table.pop((stream.peer, stream.stream_id), None)

    def _tap(self, kind: str, stream: Stream, msg_seq: int) -> None:
        if self.on_stream_event is not None:
            self.on_stream_event(kind, stream.peer, stream.stream_id, stream.initiator, msg_seq)

    # -- diagnostics ---------------------------------------------------
    @property
    def node(self):
        """The mesh node this manager is hooked onto."""
        return self._node

    @property
    def active_streams(self) -> int:
        return len(self._initiated) + len(self._accepted)

    def streams(self) -> List[Stream]:
        return list(self._initiated.values()) + list(self._accepted.values())

    def detach(self) -> None:
        """Release the node hook (streams become inert)."""
        # Bound methods are re-created per access, so compare the owner
        # rather than the method object identity.
        hook = self._node.on_reliable_consume
        if getattr(hook, "__self__", None) is self:
            self._node.on_reliable_consume = None
        if getattr(self._node, "stream_manager", None) is self:
            self._node.stream_manager = None
