"""Periodic routing-table dissemination (the HELLO service).

Every node broadcasts its routing table every ``hello_period_s`` seconds
(with jitter, so neighbours do not synchronise and collide).  A table too
large for one frame is split across consecutive ROUTING packets — each is
self-contained (the merge rules are per-entry), so receivers need no
reassembly.

The service also owns the periodic route-expiry sweep, mirroring how the
firmware couples both timers in its routing task.
"""

from __future__ import annotations

import logging
import random
from typing import Callable, List, Optional

from repro.net import serialization
from repro.net.config import MesherConfig
from repro.net.packets import (
    MAX_ROUTING_ENTRIES,
    ROUTING_ENTRY_SIZE,
    RoutingEntry,
    RoutingPacket,
)
from repro.net.routing_table import RoutingTable
from repro.sim.kernel import PeriodicTimer, Simulator
from repro.trace.events import EventKind, TraceRecorder

logger = logging.getLogger(__name__)

#: Signature the service uses to hand packets to the send queue.
EnqueueFn = Callable[[RoutingPacket], bool]


class HelloService:
    """Builds and schedules ROUTING broadcasts for one node."""

    def __init__(
        self,
        sim: Simulator,
        address: int,
        table: RoutingTable,
        config: MesherConfig,
        enqueue: EnqueueFn,
        rng: random.Random,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self._sim = sim
        self._address = address
        self._table = table
        self._config = config
        self._enqueue = enqueue
        self._rng = rng
        self._trace = trace
        self._hello_timer: Optional[PeriodicTimer] = None
        self._purge_timer: Optional[PeriodicTimer] = None
        self.hellos_sent = 0
        self.hello_entries_sent = 0
        # Built ROUTING packets, reused beacon-to-beacon while the table's
        # advertised rows are unchanged (packets are frozen, so sharing
        # one object across transmissions is safe).
        self._packets_cache: Optional[List[RoutingPacket]] = None
        self._packets_version: int = -1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the hello and purge timers.

        The first hello goes out after a random fraction of one period so
        that a cold-started network does not flood the channel with
        simultaneous beacons.
        """
        if self._hello_timer is not None:
            return
        period = self._config.hello_period_s
        first = self._rng.uniform(0.05 * period, period)
        self._hello_timer = PeriodicTimer(
            self._sim,
            period,
            self.send_hello,
            jitter=self._jitter,
            label=f"hello {self._address:#06x}",
        )
        self._hello_timer.start(first_delay=first)
        self._purge_timer = self._sim.periodic(
            self._config.purge_period_s,
            self._purge,
            label=f"purge {self._address:#06x}",
        )

    def stop(self) -> None:
        """Disarm both timers (node shutdown)."""
        if self._hello_timer is not None:
            self._hello_timer.cancel()
            self._hello_timer = None
        if self._purge_timer is not None:
            self._purge_timer.cancel()
            self._purge_timer = None

    @property
    def running(self) -> bool:
        """Whether the service is armed."""
        return self._hello_timer is not None

    # ------------------------------------------------------------------
    def send_hello(self) -> None:
        """Build ROUTING packet(s) from the current table and enqueue them.

        A stable table (same advertised rows as the previous beacon, per
        :attr:`RoutingTable.version`) reuses the previously built packets
        instead of re-snapshotting and re-chunking the table.
        """
        version = self._table.version
        packets = self._packets_cache
        if packets is None or version != self._packets_version:
            wire_rows = getattr(self._table, "advertised_wire_rows", None)
            if wire_rows is not None:
                # Columnar table: chunk its pre-encoded wire rows and
                # prime the frame encoder, skipping the per-row struct
                # packing entirely.
                packets = self._build_packets_from_wire(
                    *wire_rows(self_role=self._config.role)
                )
            else:
                entries = self._table.snapshot(self_role=self._config.role)
                packets = self.build_packets(entries)
            self._packets_cache = packets
            self._packets_version = version
        for packet in packets:
            if self._enqueue(packet):
                self.hellos_sent += 1
                self.hello_entries_sent += len(packet.entries)
                if self._trace is not None:
                    self._trace.record(
                        self._sim.now,
                        self._address,
                        EventKind.HELLO_SENT,
                        entries=len(packet.entries),
                    )

    def build_packets(self, entries: List[RoutingEntry]) -> List[RoutingPacket]:
        """Split an entry list into maximally filled ROUTING packets."""
        packets = []
        for start in range(0, len(entries), MAX_ROUTING_ENTRIES):
            chunk = tuple(entries[start : start + MAX_ROUTING_ENTRIES])
            packets.append(RoutingPacket(src=self._address, entries=chunk))
        if not packets:  # empty table still advertises the node itself
            packets.append(RoutingPacket(src=self._address, entries=()))
        return packets

    def _build_packets_from_wire(self, addresses, metrics, roles, body: bytes) -> List[RoutingPacket]:
        """Chunk pre-encoded advertised rows into ROUTING packets.

        ``body`` is the concatenated wire encoding of every row (from
        :meth:`ColumnarRoutingTable.advertised_wire_rows`); each chunk's
        slice seeds the encode memo, so the later ``encode(packet)``
        reduces to a header pack plus a byte join.  Byte-exactness with
        the scalar build path is asserted by the hello tests.
        """
        packets = []
        trusted = RoutingEntry.trusted
        for start in range(0, len(addresses), MAX_ROUTING_ENTRIES):
            end = start + MAX_ROUTING_ENTRIES
            chunk = tuple(map(trusted, addresses[start:end], metrics[start:end], roles[start:end]))
            packet = RoutingPacket(src=self._address, entries=chunk)
            serialization.prime_encode(
                packet, body[start * ROUTING_ENTRY_SIZE : end * ROUTING_ENTRY_SIZE]
            )
            packets.append(packet)
        return packets

    def _jitter(self) -> float:
        spread = self._config.hello_jitter_fraction * self._config.hello_period_s
        if spread == 0:
            return 0.0
        return self._rng.uniform(-spread, spread)

    def _purge(self) -> None:
        # Route-removal trace events are emitted by the table's on_change
        # hook (wired by the mesher), so the sweep itself stays silent.
        self._table.purge(self._sim.now)
