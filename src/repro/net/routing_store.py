"""Columnar (numpy-backed) distance-vector routing store.

The scalar :class:`repro.net.routing_table.RoutingTable` keeps one
Python ``RouteEntry`` object per destination and merges received hellos
row by row.  That loop is the protocol plane's hot spot at scale: a
converging n=1000 mesh performs tens of millions of per-row merge
visits, each a dict probe plus a handful of attribute loads.

:class:`ColumnarRoutingTable` keeps the same table as aligned dense
numpy columns over slots ``[0, count)``::

    _addr     int64    destination address
    _via      int64    next hop
    _metric   int64    hop count
    _role     int64    advertised role bits
    _updated  float64  last refresh time
    _snr      float64  hello SNR of the teaching packet (NaN = unknown)
    _order    int64    monotonic insertion stamp (dict-order replay)

plus ``_slots``, a direct-map address -> slot index (-1 absent, -2 the
node's own address, which is never stored).  Deletion swaps the last
row into the freed slot, so the columns stay dense; ``_order`` lets
``purge``/``remove_via`` report removals in the insertion order the
scalar dict produced.

Merging a received hello becomes one vectorized compare-and-update over
the packet's column view (:class:`repro.net.packets.PacketColumns`):
candidate metric = advertised + 1; adopt where new, strictly better, or
current-via == sender; the ``max_metric`` cap and broadcast-row masks
are applied once per (packet, cap) pair.  Two cases fall back to a
per-row loop because the scalar semantics are order-dependent inside a
single packet: payloads carrying duplicate addresses, and tables with
the SNR tie-break enabled (an early row can replace the via-entry whose
SNR a later row's tie-break reads).

Every observable semantic of the scalar table is preserved exactly —
``version``/``_snr_version`` bump rules, the per-neighbour no-op merge
memo (here remembering *slot indices*, valid because slots cannot move
without a version bump), change-hook event kinds/values/order, purge
expiry, and ``snapshot()`` row order.  The equivalence suite in
``tests/properties/test_routing_equivalence.py`` asserts this over
random operation streams; ``make_routing_table`` selects the
implementation (config ``routing_impl`` / env ``REPRO_ROUTING_IMPL``).

One observable difference is documented and deliberate: entries
returned by lookups are *materialized copies* of the column row, so
mutating them does not write back to the table (use ``set_route``).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Iterator, List, Optional

from repro.net.addresses import BROADCAST_ADDRESS, format_address
from repro.net.packets import NodeRole, RoutingEntry, columns_of, rows_of
from repro.net.routing_table import _DEFAULT_ROLE, _MERGE_MEMO_MAX, ChangeHook, RouteEntry

try:  # pragma: no cover - import guard mirrors repro.phy.batch
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

logger = logging.getLogger(__name__)

#: NaN encodes "no measured SNR" (the scalar table's ``None``).
_NAN = float("nan")

if HAVE_NUMPY:
    _EMPTY_SLOTS = np.empty(0, dtype=np.int64)
    #: Little-endian wire layout of one ROUTING row (see serialization).
    WIRE_DTYPE = np.dtype([("address", "<u2"), ("metric", "u1"), ("role", "u1")])


def as_address_array(addresses):
    """Int64 array view of an address sequence (for ``covers_all``)."""
    return np.asarray(addresses, dtype=np.int64)


class ColumnarRoutingTable:
    """Drop-in columnar replacement for ``RoutingTable`` (see module doc)."""

    #: Packets with fewer (post-mask) rows than this merge via the
    #: per-row loop: numpy call overhead beats the loop only once a
    #: packet carries a dozen or so rows.  Measured on the steady-state
    #: no-op merge: scalar wins through 12 rows (33 vs 36 us/packet),
    #: vector wins from 16 (36 vs 41) out to the 62-row full hello
    #: payload (74 vs 101) — the crossover sits at ~14.  Tests lower it
    #: to force the vector path on small payloads.
    VECTOR_MIN_ROWS = 14

    def __init__(
        self,
        self_address: int,
        *,
        route_timeout: float = 600.0,
        max_metric: int = 16,
        snr_tiebreak_db: Optional[float] = None,
        on_change: Optional[ChangeHook] = None,
    ) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by the factory
            raise RuntimeError("ColumnarRoutingTable requires numpy")
        if route_timeout <= 0:
            raise ValueError("route_timeout must be positive")
        if not 1 <= max_metric <= 255:
            raise ValueError("max_metric must be in [1, 255]")
        if snr_tiebreak_db is not None and snr_tiebreak_db < 0:
            raise ValueError("snr_tiebreak_db must be >= 0")
        self.self_address = self_address
        self.route_timeout = route_timeout
        self.max_metric = max_metric
        self.snr_tiebreak_db = snr_tiebreak_db
        self._on_change = on_change
        self._version: int = 0
        self._snr_version: int = 0
        self._merge_memo: Dict[int, tuple] = {}
        # neighbour -> (version, snr_version, slot, role, snr): the
        # steady-state heard_from refresh validated against both version
        # counters, so a hit needs zero numpy scalar reads.  Any via/
        # metric/role change bumps _version and any SNR change bumps
        # _snr_version, so a stale slot can never validate.  Bounded by
        # the neighbour degree (one entry per heard address).
        self._direct_memo: Dict[int, tuple] = {}
        cap = 8
        self._addr = np.empty(cap, dtype=np.int64)
        self._via = np.empty(cap, dtype=np.int64)
        self._metric = np.empty(cap, dtype=np.int64)
        self._role = np.empty(cap, dtype=np.int64)
        self._updated = np.empty(cap, dtype=np.float64)
        self._snr = np.empty(cap, dtype=np.float64)
        self._order = np.empty(cap, dtype=np.int64)
        self._count: int = 0
        self._next_order: int = 0
        slots_len = max(64, self_address + 1)
        self._slots = np.full(slots_len, -1, dtype=np.int64)
        self._slots[self_address] = -2  # own address is never stored
        # Memos: sorted-slot order keyed on the address set revision,
        # snapshot / advertised wire keyed on (version, self_role).
        self._addr_revision: int = 0
        self._sorted_cache: Optional[tuple] = None
        self._snapshot_cache: Optional[tuple] = None
        self._wire_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Storage plumbing
    # ------------------------------------------------------------------
    def _grow_columns(self, needed: int) -> None:
        cap = self._addr.shape[0]
        while cap < needed:
            cap *= 2
        count = self._count
        for name in ("_addr", "_via", "_metric", "_role", "_updated", "_snr", "_order"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:count] = old[:count]
            setattr(self, name, new)

    def _grow_slots(self, max_addr: int) -> None:
        size = self._slots.shape[0]
        new_size = min(0x10000, max(size * 2, max_addr + 1))
        new = np.full(new_size, -1, dtype=np.int64)
        new[:size] = self._slots
        self._slots = new

    def _slot_of(self, address: int) -> int:
        if 0 <= address < self._slots.shape[0]:
            return self._slots.item(address)
        return -1

    def _append_row(
        self, address: int, via: int, metric: int, role: int, now: float, snr: float
    ) -> int:
        slot = self._count
        if slot >= self._addr.shape[0]:
            self._grow_columns(slot + 1)
        if address >= self._slots.shape[0]:
            self._grow_slots(address)
        self._addr[slot] = address
        self._via[slot] = via
        self._metric[slot] = metric
        self._role[slot] = role
        self._updated[slot] = now
        self._snr[slot] = snr
        self._order[slot] = self._next_order
        self._next_order += 1
        self._slots[address] = slot
        self._count = slot + 1
        self._addr_revision += 1
        return slot

    def _remove_address(self, address: int) -> None:
        slot = int(self._slots[address])
        last = self._count - 1
        if slot != last:
            for col in (self._addr, self._via, self._metric, self._role, self._updated, self._snr, self._order):
                col[slot] = col[last]
            self._slots[self._addr[slot]] = slot
        self._slots[address] = -1
        self._count = last
        self._addr_revision += 1

    def _materialize(self, slot: int) -> RouteEntry:
        snr = self._snr.item(slot)
        return RouteEntry(
            address=self._addr.item(slot),
            via=self._via.item(slot),
            metric=self._metric.item(slot),
            role=self._role.item(slot),
            updated_at=self._updated.item(slot),
            received_snr_db=None if snr != snr else snr,
        )

    def _materialize_many(self, slots) -> List[RouteEntry]:
        """Materialize several slots with batched column gathers —
        one ``tolist`` per column instead of six scalar reads per row."""
        addr = self._addr[slots].tolist()
        via = self._via[slots].tolist()
        metric = self._metric[slots].tolist()
        role = self._role[slots].tolist()
        updated = self._updated[slots].tolist()
        snr = self._snr[slots].tolist()
        return [
            RouteEntry(addr[i], via[i], metric[i], role[i], updated[i], None if s != s else s)
            for i, s in enumerate(snr)
        ]

    def _notify(self, kind: str, entry: RouteEntry) -> None:
        self._version += 1
        if self._on_change is not None:
            self._on_change(kind, entry)

    def _notify_slot(self, kind: str, slot: int) -> None:
        """Version bump + hook for a live slot, materializing the entry
        copy only when someone is listening."""
        self._version += 1
        hook = self._on_change
        if hook is not None:
            hook(kind, self._materialize(slot))

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def heard_from(
        self, neighbour: int, now: float, *, role: int = _DEFAULT_ROLE, snr_db: Optional[float] = None
    ) -> None:
        """Refresh the direct route to a neighbour we just heard."""
        if neighbour == self.self_address or neighbour == BROADCAST_ADDRESS:
            return
        memo = self._direct_memo.get(neighbour)
        if memo is not None and memo[0] == self._version and memo[1] == self._snr_version:
            # Steady state: the slot is still the direct route (any
            # via/metric change would have bumped a version), and the
            # cached role/SNR mirror the row, so the refresh needs only
            # the _updated write — no numpy scalar reads at all.
            slot, cur_role, cur_snr = memo[2], memo[3], memo[4]
            if role and role != cur_role:
                self._role[slot] = role
                self._version += 1
                cur_role = role
            self._updated[slot] = now
            if snr_db is None:
                if cur_snr == cur_snr:  # had a value, now unknown
                    self._snr_version += 1
                    self._snr[slot] = _NAN
                    cur_snr = _NAN
            elif cur_snr != snr_db:  # NaN != value is also a change
                self._snr_version += 1
                self._snr[slot] = snr_db
                cur_snr = snr_db
            self._direct_memo[neighbour] = (
                self._version, self._snr_version, slot, cur_role, cur_snr
            )
            return
        slots = self._slots
        slot = slots.item(neighbour) if neighbour < slots.shape[0] else -1
        if slot >= 0 and self._via.item(slot) == neighbour and self._metric.item(slot) == 1:
            # Already the direct route but the memo went stale (another
            # table change bumped a version): refresh in place and
            # re-prime the memo for the next packet.
            cur_role = self._role.item(slot)
            if role and role != cur_role:
                self._role[slot] = role
                self._version += 1
                cur_role = role
            self._updated[slot] = now
            cur_snr = self._snr.item(slot)
            if snr_db is None:
                if cur_snr == cur_snr:  # had a value, now unknown
                    self._snr_version += 1
                    self._snr[slot] = _NAN
                    cur_snr = _NAN
            elif cur_snr != snr_db:  # NaN != value is also a change
                self._snr_version += 1
                self._snr[slot] = snr_db
                cur_snr = snr_db
            self._direct_memo[neighbour] = (
                self._version, self._snr_version, slot, cur_role, cur_snr
            )
            return
        snr = _NAN if snr_db is None else snr_db
        if slot < 0:
            slot = self._append_row(neighbour, neighbour, 1, role, now, snr)
            self._notify_slot("added", slot)
            self._direct_memo[neighbour] = (
                self._version, self._snr_version, slot, role, snr
            )
            return
        # Existing multi-hop route becomes direct: overwrite in place
        # (keeps the insertion stamp, matching dict key-overwrite order).
        self._via[slot] = neighbour
        self._metric[slot] = 1
        new_role = role or int(self._role[slot])
        self._role[slot] = new_role
        self._updated[slot] = now
        self._snr[slot] = snr
        self._notify_slot("updated", slot)
        self._direct_memo[neighbour] = (
            self._version, self._snr_version, slot, new_role, snr
        )

    def process_hello(
        self,
        src: int,
        entries,
        now: float,
        *,
        snr_db: Optional[float] = None,
    ) -> int:
        """Merge a neighbour's ROUTING packet. Returns routes changed."""
        if src == self.self_address or src == BROADCAST_ADDRESS:
            return 0
        if not isinstance(entries, (tuple, list)):
            entries = list(entries)
        columns = columns_of(entries)
        self.heard_from(src, now, role=columns.role_of.get(src, _DEFAULT_ROLE), snr_db=snr_db)
        memo = self._merge_memo.get(src)
        if (
            memo is not None
            and memo[0] is entries
            and memo[1] == self._version
            and memo[2] == self._snr_version
        ):
            # Same packet object against an unchanged table: replay the
            # recorded no-op.  The memo holds slot indices, which cannot
            # have moved while the version stayed put (every add/remove
            # bumps it).
            self._updated[memo[3]] = now
            return 0
        if self.snr_tiebreak_db is not None or columns.has_dups:
            # Order-dependent inside a single packet; keep the exact
            # scalar row loop.
            changed, refreshed = self._merge_rows_scalar(src, rows_of(entries)[0], now)
        else:
            addr, cand, role, max_addr, nsrc = columns.filtered(self.max_metric, src)
            if addr.shape[0] < self.VECTOR_MIN_ROWS:
                changed, refreshed = self._merge_rows_scalar(src, rows_of(entries)[0], now)
            else:
                changed, refreshed = self._merge_rows_vector(
                    src, addr, cand, role, nsrc, max_addr, now
                )
        if changed == 0:
            memo_table = self._merge_memo
            if src not in memo_table and len(memo_table) >= _MERGE_MEMO_MAX:
                for key in list(memo_table)[: _MERGE_MEMO_MAX // 2]:
                    del memo_table[key]
            memo_table[src] = (entries, self._version, self._snr_version, refreshed)
        return changed

    #: Below this many changed rows a merge applies them with the scalar
    #: per-row path: the bulk masked writes + batched event emission have
    #: ~20 numpy calls of fixed overhead, which only pays off once enough
    #: rows amortize it.
    SMALL_CHANGE_ROWS = 4

    def _merge_rows_vector(self, src: int, addr, cand, role, nsrc, max_addr: int, now: float):
        """One vectorized compare-and-update over unique-address rows.

        Only called when the tie-break is off and the packet has no
        duplicate addresses, so rows are independent and masks decide
        everything the scalar loop decided row by row.
        """
        slot_map = self._slots
        if max_addr >= slot_map.shape[0]:
            self._grow_slots(max_addr)
            slot_map = self._slots
        metric_col = self._metric
        role_col = self._role
        slots = slot_map.take(addr)
        # Clipped gathers: negative slots (missing rows at -1, the own
        # address at -2) read row 0; the ``ex`` mask decides validity.
        cur_metric = metric_col.take(slots, mode="clip")
        cur_via = self._via.take(slots, mode="clip")
        cur_role = role_col.take(slots, mode="clip")
        ex = slots >= 0
        ex &= nsrc
        better = cand < cur_metric
        better &= ex
        follow = cur_via == src
        follow &= ex
        follow &= ~better
        follow_slots = slots[follow]
        # Follow-the-via rows always refresh their timestamp.
        self._updated[follow_slots] = now
        diff = cur_metric != cand
        diff |= cur_role != role
        meaningful = follow & diff
        changed_mask = better | meaningful
        new = slots == -1
        # count_nonzero is ~3x cheaper than .any() at packet sizes, and
        # the change path needs both counts anyway.
        n_changed_rows = int(np.count_nonzero(changed_mask))
        n_new = int(np.count_nonzero(new))
        if n_changed_rows + n_new == 0:
            return 0, follow_slots
        changed_positions = np.nonzero(changed_mask)[0]
        new_positions = np.nonzero(new)[0]
        if n_changed_rows + n_new <= self.SMALL_CHANGE_ROWS:
            return (
                self._apply_small_change(
                    src,
                    addr,
                    cand,
                    role,
                    slots,
                    better,
                    changed_positions.tolist(),
                    new_positions.tolist(),
                    now,
                ),
                follow_slots,
            )
        # --- apply column writes -------------------------------------
        # Non-meaningful follow rows carry identical metric/role values,
        # so only the meaningful subset needs the value writes.
        meaningful_slots = slots[meaningful]
        metric_col[meaningful_slots] = cand[meaningful]
        role_col[meaningful_slots] = role[meaningful]
        better_slots = slots[better]
        if better_slots.shape[0]:
            self._via[better_slots] = src
            metric_col[better_slots] = cand[better]
            role_col[better_slots] = role[better]
            self._updated[better_slots] = now
            self._snr[better_slots] = _NAN
        if n_new:
            base = self._count
            if base + n_new > self._addr.shape[0]:
                self._grow_columns(base + n_new)
            new_slots = np.arange(base, base + n_new, dtype=np.int64)
            new_addr = addr[new]
            self._addr[new_slots] = new_addr
            self._via[new_slots] = src
            self._metric[new_slots] = cand[new]
            self._role[new_slots] = role[new]
            self._updated[new_slots] = now
            self._snr[new_slots] = _NAN
            self._order[new_slots] = np.arange(
                self._next_order, self._next_order + n_new, dtype=np.int64
            )
            self._next_order += n_new
            self._slots[new_addr] = new_slots
            self._count = base + n_new
            self._addr_revision += 1
        # --- emit change events in packet-row order ------------------
        # The entries carry final values either way (addresses are
        # unique, so later rows never touch an earlier row's entry).
        changed_slots = slots[changed_mask]
        if n_new:
            all_positions = np.concatenate([changed_positions, new_positions])
            all_slots = np.concatenate([changed_slots, new_slots])
            added = np.concatenate(
                [np.zeros(changed_positions.shape[0], dtype=bool), np.ones(n_new, dtype=bool)]
            )
            order = np.argsort(all_positions, kind="stable")
            all_slots = all_slots[order]
            added = added[order].tolist()
        else:
            all_slots = changed_slots
            added = None
        hook = self._on_change
        n_changed = all_slots.shape[0]
        if hook is None:
            # No observer: the per-change version bumps are the only
            # observable effect, so skip materializing entry copies.
            self._version += n_changed
            return n_changed, follow_slots
        entries = self._materialize_many(all_slots)
        if added is None:
            for entry in entries:
                self._version += 1
                hook("updated", entry)
        else:
            for i, entry in enumerate(entries):
                self._version += 1
                hook("added" if added[i] else "updated", entry)
        return n_changed, follow_slots

    def _apply_small_change(
        self, src, addr, cand, role, slots, better, changed_positions, new_positions, now
    ):
        """Row-at-a-time application for merges that changed only a few
        rows — the common steady-state case, where per-row ``.item()``
        reads beat another ~20 fixed-cost array operations.

        ``changed_positions``/``new_positions`` are ascending; the merge
        walks them in packet-row order so notification order matches the
        bulk path and the scalar loop exactly."""
        changed = 0
        ci = ni = 0
        n_c, n_n = len(changed_positions), len(new_positions)
        while ci < n_c or ni < n_n:
            if ni >= n_n or (ci < n_c and changed_positions[ci] < new_positions[ni]):
                pos = changed_positions[ci]
                ci += 1
                slot = slots.item(pos)
                self._metric[slot] = cand.item(pos)
                self._role[slot] = role.item(pos)
                if better.item(pos):
                    self._via[slot] = src
                    self._updated[slot] = now
                    self._snr[slot] = _NAN
                self._notify_slot("updated", slot)
            else:
                pos = new_positions[ni]
                ni += 1
                slot = self._append_row(
                    addr.item(pos), src, cand.item(pos), role.item(pos), now, _NAN
                )
                self._notify_slot("added", slot)
            changed += 1
        return changed

    def _merge_rows_scalar(self, src: int, rows, now: float):
        """Exact port of the scalar per-row merge loop (order-sensitive
        fallback; also used below the vector row threshold)."""
        changed = 0
        refreshed: List[int] = []
        self_addr = self.self_address
        max_metric = self.max_metric
        tiebreak = self.snr_tiebreak_db is not None
        for address, adv_metric, role in rows:
            if address == self_addr or address == BROADCAST_ADDRESS or address == src:
                continue
            metric = adv_metric + 1
            if metric > max_metric:
                continue
            slot = self._slot_of(address)
            if slot < 0:
                slot = self._append_row(address, src, metric, role, now, _NAN)
                self._notify_slot("added", slot)
                changed += 1
            elif metric < self._metric[slot]:
                self._via[slot] = src
                self._metric[slot] = metric
                self._role[slot] = role
                self._updated[slot] = now
                self._snr[slot] = _NAN
                self._notify_slot("updated", slot)
                changed += 1
            elif self._via[slot] == src:
                meaningful = self._metric[slot] != metric or self._role[slot] != role
                self._metric[slot] = metric
                self._role[slot] = role
                self._updated[slot] = now
                refreshed.append(slot)
                if meaningful:
                    self._notify_slot("updated", slot)
                    changed += 1
            elif tiebreak and metric == self._metric[slot] and self._stronger_first_hop(src, int(self._via[slot])):
                self._via[slot] = src
                self._metric[slot] = metric
                self._role[slot] = role
                self._updated[slot] = now
                self._snr[slot] = _NAN
                self._notify_slot("updated", slot)
                changed += 1
        return changed, np.array(refreshed, dtype=np.int64) if refreshed else _EMPTY_SLOTS

    def _merge_candidate(self, address: int, via: int, metric: int, role: int, now: float) -> bool:
        """Single-candidate merge, API parity with the scalar table."""
        slot = self._slot_of(address)
        if slot < 0:
            slot = self._append_row(address, via, metric, role, now, _NAN)
            self._notify_slot("added", slot)
            return True
        if metric < self._metric[slot]:
            self._via[slot] = via
            self._metric[slot] = metric
            self._role[slot] = role
            self._updated[slot] = now
            self._snr[slot] = _NAN
            self._notify_slot("updated", slot)
            return True
        if self._via[slot] == via:
            meaningful = self._metric[slot] != metric or self._role[slot] != role
            self._metric[slot] = metric
            self._role[slot] = role
            self._updated[slot] = now
            if meaningful:
                self._notify_slot("updated", slot)
            return meaningful
        if metric == self._metric[slot] and self._stronger_first_hop(via, int(self._via[slot])):
            self._via[slot] = via
            self._metric[slot] = metric
            self._role[slot] = role
            self._updated[slot] = now
            self._snr[slot] = _NAN
            self._notify_slot("updated", slot)
            return True
        return False

    def set_route(
        self,
        address: int,
        via: int,
        metric: int,
        role: int = _DEFAULT_ROLE,
        now: float = 0.0,
    ) -> None:
        """Install or overwrite a route unconditionally.

        The oracle baselines use this to force their precomputed
        shortest paths into the table; notifies only on actual change.
        """
        slot = self._slot_of(address)
        if slot < 0:
            slot = self._append_row(address, via, metric, role, now, _NAN)
            self._notify_slot("added", slot)
            return
        changed = (
            self._via[slot] != via or self._metric[slot] != metric or self._role[slot] != role
        )
        self._via[slot] = via
        self._metric[slot] = metric
        self._role[slot] = role
        self._updated[slot] = now
        if changed:
            self._notify_slot("updated", slot)

    def _stronger_first_hop(self, candidate_via: int, current_via: int) -> bool:
        if self.snr_tiebreak_db is None:
            return False
        cand_slot = self._slot_of(candidate_via)
        if cand_slot < 0:
            return False
        cand_snr = float(self._snr[cand_slot])
        if cand_snr != cand_snr:  # NaN: no measured SNR
            return False
        cur_slot = self._slot_of(current_via)
        if cur_slot < 0:
            return True
        cur_snr = float(self._snr[cur_slot])
        if cur_snr != cur_snr:
            return True  # any measured link beats a vanished/unmeasured one
        return cand_snr - cur_snr >= self.snr_tiebreak_db

    # ------------------------------------------------------------------
    # Ageing
    # ------------------------------------------------------------------
    def purge(self, now: float) -> List[RouteEntry]:
        """Drop entries not refreshed within ``route_timeout``."""
        n = self._count
        if n == 0:
            return []
        stale = (now - self._updated[:n]) > self.route_timeout
        if not stale.any():
            return []
        idx = np.nonzero(stale)[0]
        idx = idx[np.argsort(self._order[idx], kind="stable")]
        expired = self._materialize_many(idx)
        for entry in expired:
            self._remove_address(entry.address)
            self._merge_memo.pop(entry.address, None)
            self._notify("removed", entry)
        return expired

    def remove_via(self, neighbour: int) -> List[RouteEntry]:
        """Immediately drop every route through ``neighbour``."""
        n = self._count
        dropped: List[RouteEntry] = []
        if n:
            idx = np.nonzero(self._via[:n] == neighbour)[0]
            if idx.shape[0]:
                idx = idx[np.argsort(self._order[idx], kind="stable")]
                dropped = self._materialize_many(idx)
        for entry in dropped:
            self._remove_address(entry.address)
            self._notify("removed", entry)
        self._merge_memo.pop(neighbour, None)
        return dropped

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def next_hop(self, destination: int) -> Optional[int]:
        slot = self._slot_of(destination)
        return self._via.item(slot) if slot >= 0 else None

    def get(self, destination: int) -> Optional[RouteEntry]:
        """The entry for ``destination`` (a materialized copy), or None."""
        slot = self._slot_of(destination)
        return self._materialize(slot) if slot >= 0 else None

    def has_route(self, destination: int) -> bool:
        return self._slot_of(destination) >= 0

    def metric(self, destination: int) -> Optional[int]:
        slot = self._slot_of(destination)
        return self._metric.item(slot) if slot >= 0 else None

    def covers_all(self, addresses) -> bool:
        """Whether every address in the array is routable (own excluded).

        One vectorized probe replacing a per-destination ``has_route``
        scan — the convergence check is O(n^2) pair lookups without it.
        """
        arr = as_address_array(addresses)
        slots = self._slots
        if arr.shape[0] and int(arr.max()) >= slots.shape[0]:
            return False
        return bool(((slots[arr] >= 0) | (arr == self.self_address)).all())

    @property
    def size(self) -> int:
        return self._count

    @property
    def version(self) -> int:
        return self._version

    def _sorted_slots(self):
        cache = self._sorted_cache
        if cache is not None and cache[0] == self._addr_revision:
            return cache[1]
        n = self._count
        order = np.argsort(self._addr[:n])  # addresses are unique
        self._sorted_cache = (self._addr_revision, order)
        return order

    def destinations(self) -> List[int]:
        return self._addr[: self._count][self._sorted_slots()].tolist()

    def neighbours(self) -> List[int]:
        n = self._count
        addr = self._addr[:n]
        direct = (self._metric[:n] == 1) & (self._via[:n] == addr)
        return sorted(addr[direct].tolist())

    def __iter__(self) -> Iterator[RouteEntry]:
        for slot in self._sorted_slots().tolist():
            yield self._materialize(slot)

    def __contains__(self, destination: int) -> bool:
        return self._slot_of(destination) >= 0

    # ------------------------------------------------------------------
    # Advertising
    # ------------------------------------------------------------------
    def snapshot(self, *, self_role: int = _DEFAULT_ROLE) -> List[RoutingEntry]:
        """The advertised rows; memoized on (version, self_role)."""
        cache = self._snapshot_cache
        if cache is not None and cache[0] == self._version and cache[1] == self_role:
            return list(cache[2])
        rows = [RoutingEntry(address=self.self_address, metric=0, role=self_role)]
        n = self._count
        order = self._sorted_slots()
        addr = self._addr[:n][order].tolist()
        metric = self._metric[:n][order].tolist()
        role = self._role[:n][order].tolist()
        rows.extend(map(RoutingEntry.trusted, addr, metric, role))
        self._snapshot_cache = (self._version, self_role, tuple(rows))
        return rows

    def advertised_wire_rows(self, *, self_role: int = _DEFAULT_ROLE) -> tuple:
        """``(addresses, metrics, roles, body)`` of the advertised rows.

        ``body`` is the byte-exact concatenated wire encoding of every
        row (the ROUTING payload layout), which the hello service slices
        per chunk to pre-seed the frame encoder.  Memoized on
        (version, self_role) like :meth:`snapshot`.
        """
        cache = self._wire_cache
        if cache is not None and cache[0] == self._version and cache[1] == self_role:
            return cache[2]
        # Validate the self row exactly like snapshot()'s constructor
        # does (it guards self_role fitting u8 on the wire).
        self_row = RoutingEntry(address=self.self_address, metric=0, role=self_role)
        n = self._count
        order = self._sorted_slots()
        wire = np.empty(n + 1, dtype=WIRE_DTYPE)
        wire["address"][0] = self_row.address
        wire["metric"][0] = self_row.metric
        wire["role"][0] = self_row.role
        wire["address"][1:] = self._addr[:n][order]
        wire["metric"][1:] = self._metric[:n][order]
        wire["role"][1:] = self._role[:n][order]
        value = (
            wire["address"].tolist(),
            wire["metric"].tolist(),
            wire["role"].tolist(),
            wire.tobytes(),
        )
        self._wire_cache = (self._version, self_role, value)
        return value

    def format(self) -> str:
        """Multi-line rendering like the demo's serial-console dump."""
        lines = [f"Routing table of {format_address(self.self_address)} ({self.size} routes)"]
        for entry in self:
            lines.append(
                f"  dst={format_address(entry.address)} via={format_address(entry.via)} "
                f"metric={entry.metric} role={entry.role}"
            )
        return "\n".join(lines)
