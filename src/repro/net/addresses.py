"""16-bit node addressing.

LoRaMesher derives each node's address from the last two bytes of its
ESP32 MAC address — small enough to fit LoRa frames, unique enough for the
network sizes the protocol targets.  We reproduce the derivation and the
broadcast convention.
"""

from __future__ import annotations

#: Destination address meaning "every node in radio range".
BROADCAST_ADDRESS = 0xFFFF

#: The null/unassigned address.
NULL_ADDRESS = 0x0000


def address_from_mac(mac: int) -> int:
    """Derive a 16-bit mesh address from a (48-bit) MAC address.

    Uses the low two bytes, exactly as the firmware does.  Addresses that
    would collide with the broadcast or null address are perturbed, since
    a node must never own either.
    """
    if mac < 0:
        raise ValueError(f"MAC must be non-negative, got {mac}")
    address = mac & 0xFFFF
    if address in (BROADCAST_ADDRESS, NULL_ADDRESS):
        address = (address ^ 0x00FF) or 0x0001
    return address


def is_unicast(address: int) -> bool:
    """True for a valid single-node destination."""
    return NULL_ADDRESS < address < BROADCAST_ADDRESS


def validate_address(address: int, *, allow_broadcast: bool = False) -> int:
    """Validate an address field, returning it unchanged.

    Raises ``ValueError`` for out-of-range values, the null address, and —
    unless ``allow_broadcast`` — the broadcast address.
    """
    if not 0 <= address <= 0xFFFF:
        raise ValueError(f"address {address:#x} does not fit 16 bits")
    if address == NULL_ADDRESS:
        raise ValueError("the null address 0x0000 is not addressable")
    if address == BROADCAST_ADDRESS and not allow_broadcast:
        raise ValueError("broadcast address not allowed here")
    return address


def format_address(address: int) -> str:
    """Render an address the way the demo's serial console does."""
    if address == BROADCAST_ADDRESS:
        return "BCAST"
    return f"{address:04X}"
