"""Protocol configuration.

One :class:`MesherConfig` bundles every tunable of the LoRaMesher stack.
Defaults follow the firmware's shipped configuration (hello every 120 s,
ten-minute route timeout) scaled to the demo's SF7/BW125 setting.  The
ablation benchmarks (A1–A3) sweep these knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.phy.modulation import LoRaParams
from repro.phy.regions import EU868, Region


@dataclass(frozen=True)
class MesherConfig:
    """All protocol tunables for one node (usually shared network-wide)."""

    # --- modulation / regulatory -------------------------------------
    lora: LoRaParams = field(default_factory=LoRaParams)
    region: Region = EU868
    #: Refuse to queue frames that would breach the duty cycle; when False
    #: the node delays sends until the budget allows (default firmware
    #: behaviour is to pace, not drop).
    strict_duty_cycle: bool = False

    # --- routing ------------------------------------------------------
    #: Nominal period between ROUTING broadcasts (seconds).
    hello_period_s: float = 120.0
    #: Uniform jitter applied to each hello interval, +/- this fraction of
    #: the period (desynchronises neighbours' beacons).
    hello_jitter_fraction: float = 0.25
    #: Route entries not refreshed within this window expire (seconds).
    route_timeout_s: float = 600.0
    #: How often the expiry sweep runs (seconds).
    purge_period_s: float = 60.0
    #: Maximum usable hop count; candidates beyond it are ignored.
    max_metric: int = 16
    #: Link-quality extension: when set (dB), an equal-metric route whose
    #: first hop is at least this much stronger (hello SNR) replaces the
    #: incumbent.  None keeps the paper's pure hop-count behaviour.
    link_quality_tiebreak_db: "float | None" = None
    #: Routing-table implementation: "auto" (columnar when numpy is
    #: available, else scalar), "scalar" (the dict-of-entries reference)
    #: or "columnar" (the vectorized numpy store; requires numpy).  The
    #: two are observably equivalent — asserted by the equivalence
    #: suite — and the REPRO_ROUTING_IMPL env var overrides this field.
    routing_impl: str = "auto"

    # --- medium access --------------------------------------------------
    #: Listen-before-talk: number of backoff slots drawn uniformly before
    #: each transmission attempt (0 disables the random wait).
    backoff_slots: int = 8
    #: Duration of one backoff slot (seconds). Default approximates a few
    #: SF7 symbol times.
    backoff_slot_s: float = 0.03
    #: Maximum consecutive busy-channel deferrals before sending anyway
    #: (prevents livelock under saturation).
    max_cad_retries: int = 8

    # --- queues --------------------------------------------------------
    send_queue_capacity: int = 32
    receive_queue_capacity: int = 32
    #: Application inbox capacity (delivered, not-yet-consumed messages).
    app_inbox_capacity: int = 64

    # --- reliable transport ---------------------------------------------
    #: Max application bytes per XL_DATA fragment (bounded by the wire
    #: format's MAX_CONTROL_PAYLOAD; smaller values trade airtime per
    #: frame against fragment count).
    fragment_size: int = 180
    #: ACK/next-fragment wait before the sender retransmits (seconds).
    ack_timeout_s: float = 12.0
    #: Receiver-side wait for a missing fragment before sending LOST.
    gap_timeout_s: float = 10.0
    #: Retransmission attempts before a stream is abandoned.
    max_retries: int = 6
    #: Pacing delay between consecutive fragments of one stream (seconds);
    #: gives forwarding hops room and keeps the duty cycle smooth.
    fragment_spacing_s: float = 1.0
    #: Maximum concurrent inbound reliable streams tracked per node.
    max_inbound_streams: int = 8

    # --- retransmit timer policy ----------------------------------------
    #: Exponential growth factor applied to the retransmit timeout per
    #: consecutive on-air retry of the same single/stream.  1.0 restores
    #: the historical fixed-interval timer (every retry waits exactly the
    #: base timeout) — with ``retry_jitter_fraction=0`` and
    #: ``adaptive_rto=False`` the schedule is bit-identical to the
    #: pre-backoff implementation.
    retry_backoff_base: float = 2.0
    #: Upper bound on a single backed-off retransmit wait (seconds); the
    #: cap only limits growth, it never shrinks the base timeout.
    retry_backoff_cap_s: float = 120.0
    #: Deterministic per-attempt jitter, +/- this fraction of the
    #: timeout.  Drawn from a hash of (address, seq, attempt), not from a
    #: shared RNG stream, so enabling it perturbs nothing else.  Breaks
    #: the lock-step retransmission of flows that timed out together.
    retry_jitter_fraction: float = 0.25
    #: Use per-destination SRTT/RTTVAR (RFC 6298 style) as the base
    #: retransmit timeout once ACK round-trips have been sampled;
    #: ``ack_timeout_s`` remains the cold-start value and the upper clamp.
    adaptive_rto: bool = True
    #: Local failures (no route yet, TX queue full) consume this separate
    #: budget instead of ``max_retries``: the frame never aired, so a
    #: transient queue spike must not exhaust the on-air retry budget.
    #: Local re-checks wait the un-backed-off base timeout.
    max_local_defers: int = 25

    # --- stream layer ---------------------------------------------------
    #: Sliding-window size of the connection-oriented stream layer: max
    #: reliable messages in flight per stream before send() queues.
    stream_window: int = 4

    # --- roles -----------------------------------------------------------
    #: Role bits this node advertises (see packets.NodeRole).
    role: int = 0

    def __post_init__(self) -> None:
        if self.hello_period_s <= 0:
            raise ValueError("hello_period_s must be positive")
        if not 0 <= self.hello_jitter_fraction < 1:
            raise ValueError("hello_jitter_fraction must be in [0, 1)")
        if self.route_timeout_s <= self.hello_period_s:
            raise ValueError(
                "route_timeout_s must exceed hello_period_s or every route "
                "flaps between consecutive hellos"
            )
        if not 1 <= self.max_metric <= 255:
            raise ValueError("max_metric must fit the wire metric (1..255)")
        if self.link_quality_tiebreak_db is not None and self.link_quality_tiebreak_db < 0:
            raise ValueError("link_quality_tiebreak_db must be >= 0")
        if self.routing_impl not in ("auto", "scalar", "columnar"):
            raise ValueError("routing_impl must be 'auto', 'scalar' or 'columnar'")
        if self.backoff_slots < 0 or self.backoff_slot_s < 0:
            raise ValueError("backoff parameters must be non-negative")
        if not 1 <= self.fragment_size <= 244:
            raise ValueError("fragment_size must be in [1, 244] (wire limit)")
        if self.ack_timeout_s <= 0 or self.gap_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_base < 1.0:
            raise ValueError("retry_backoff_base must be >= 1.0 (1.0 disables backoff)")
        if self.retry_backoff_cap_s <= 0:
            raise ValueError("retry_backoff_cap_s must be positive")
        if not 0 <= self.retry_jitter_fraction < 1:
            raise ValueError("retry_jitter_fraction must be in [0, 1)")
        if self.max_local_defers < 0:
            raise ValueError("max_local_defers must be >= 0")
        if self.stream_window < 1:
            raise ValueError("stream_window must be >= 1")

    def replace(self, **changes) -> "MesherConfig":
        """Copy with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)
