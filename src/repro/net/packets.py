"""Packet types and in-memory packet structures.

The over-the-air format mirrors the C structs of the LoRaMesher firmware:
a fixed 6-byte header (destination, source, type, payload length) followed
by a type-specific payload.  All packets that travel point-to-point carry
a 2-byte ``via`` field naming the next hop, which is how intermediate
nodes know a frame is theirs to forward.

Wire layout (little-endian, matching the ESP32's struct packing)::

    header      : dst:u16  src:u16  type:u8  payload_len:u8          (6 B)
    ROUTING     : n x ( address:u16  metric:u8  role:u8 )
    DATA        : via:u16  app_payload...
    NEED_ACK    : via:u16  seq_id:u8  number:u16  app_payload...
    ACK         : via:u16  seq_id:u8  number:u16
    LOST        : via:u16  seq_id:u8  number:u16
    SYNC        : via:u16  seq_id:u8  number:u16  total_bytes:u32
    XL_DATA     : via:u16  seq_id:u8  number:u16  fragment_bytes...

Byte-exact encode/decode lives in :mod:`repro.net.serialization`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Union

from repro.net.addresses import BROADCAST_ADDRESS

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Fixed header size on the wire.
HEADER_SIZE = 6
#: LoRa PHY payload ceiling; every encoded packet must fit this.
MAX_PHY_PAYLOAD = 255
#: via field size.
VIA_SIZE = 2
#: via + seq_id + number control preamble size.
CONTROL_SIZE = VIA_SIZE + 1 + 2
#: Max application bytes in one DATA packet.
MAX_DATA_PAYLOAD = MAX_PHY_PAYLOAD - HEADER_SIZE - VIA_SIZE
#: Max application bytes in one NEED_ACK or XL_DATA packet.
MAX_CONTROL_PAYLOAD = MAX_PHY_PAYLOAD - HEADER_SIZE - CONTROL_SIZE
#: Bytes per routing entry on the wire.
ROUTING_ENTRY_SIZE = 4
#: Max routing entries per ROUTING packet.
MAX_ROUTING_ENTRIES = (MAX_PHY_PAYLOAD - HEADER_SIZE) // ROUTING_ENTRY_SIZE


class PacketType(enum.IntEnum):
    """On-the-wire packet type codes."""

    ROUTING = 1  # hello: the sender's routing-table view
    DATA = 2  # unreliable unicast/broadcast application data
    NEED_ACK = 3  # single reliable application packet (expects ACK)
    ACK = 4  # acknowledgement for NEED_ACK / XL stream completion
    LOST = 5  # receiver reports a missing fragment number
    SYNC = 6  # opens a large-payload stream (fragment count, size)
    XL_DATA = 7  # one fragment of a large payload


class NodeRole(enum.IntFlag):
    """Role bits advertised in routing entries (the firmware uses these to
    mark gateway-capable nodes)."""

    DEFAULT = 0
    GATEWAY = 1


#: Interned trusted RoutingEntry rows.  The cap bounds pathological key
#: churn (hostile metrics sweeping the u8 space); real meshes use a few
#: thousand (address, metric, role) combinations.
_TRUSTED_INTERN: dict = {}
_TRUSTED_INTERN_MAX = 1 << 18


@dataclass(frozen=True, slots=True)
class RoutingEntry:
    """One row of a ROUTING packet: a destination the sender can reach.

    Instances built via :meth:`trusted` are interned and therefore
    shared; they are frozen, so sharing is unobservable except through
    ``id()``."""

    address: int
    metric: int
    role: int = int(NodeRole.DEFAULT)

    def __post_init__(self) -> None:
        if not 0 < self.address <= 0xFFFF:
            raise ValueError(f"bad routing-entry address {self.address:#x}")
        if not 0 <= self.metric <= 0xFF:
            raise ValueError(f"metric {self.metric} does not fit u8")
        if not 0 <= self.role <= 0xFF:
            raise ValueError(f"role {self.role} does not fit u8")

    @classmethod
    def trusted(cls, address: int, metric: int, role: int) -> "RoutingEntry":
        """Construct without re-running ``__post_init__`` validation.

        For fields that are already range-guaranteed — unpacked from the
        u16/u8/u8 wire structs or copied from an existing validated entry.
        Hello fan-out decodes tens of entries per received frame, making
        this the hottest allocation in a converging mesh — and the value
        space is tiny (addresses x metrics x roles actually in use), so
        entries are interned: frozen rows are shared instead of allocated.
        """
        key = (cls, address, metric, role)
        self = _TRUSTED_INTERN.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "address", address)
            object.__setattr__(self, "metric", metric)
            object.__setattr__(self, "role", role)
            if len(_TRUSTED_INTERN) >= _TRUSTED_INTERN_MAX:
                _TRUSTED_INTERN.clear()
            _TRUSTED_INTERN[key] = self
        return self


#: Id-keyed memo of the plain-int view of a ROUTING payload: the
#: ``(address, metric, role)`` rows plus a first-occurrence
#: address -> role map.  Frozen entries tuples are shared across all
#: receivers of a frame (decode memo) and across beacons while the
#: sender's table is stable (hello build cache), so the per-field
#: extraction happens once per distinct packet instead of once per
#: delivery.  Each value pins the entries tuple so its id cannot be
#: recycled while the memo entry lives.  The serializer pre-seeds the
#: memo at decode time, where the int rows exist before the entry
#: objects do.
_ROWS_CACHE: dict = {}
_ROWS_CACHE_MAX = 65_536


def _rows_value(rows: tuple) -> tuple:
    role_of: dict = {}
    setdefault = role_of.setdefault
    for address, _metric, role in rows:
        setdefault(address, role)
    return (rows, role_of)


def prime_rows(entries: tuple, rows: tuple) -> None:
    """Seed :func:`rows_of` for a freshly built entries tuple whose int
    rows the caller already holds (the decoder unpacks them from the
    wire before constructing the entry objects)."""
    if len(_ROWS_CACHE) >= _ROWS_CACHE_MAX:
        _ROWS_CACHE.clear()
    _ROWS_CACHE[id(entries)] = (entries, _rows_value(rows))


def rows_of(entries) -> tuple:
    """``((address, metric, role) rows, first-occurrence address->role)``
    for a RoutingEntry sequence.

    The role map answers "which role did this packet advertise for its
    sender" without rescanning the rows for every receiver — most beacon
    chunks of a large table do not contain the sender's own row at all.
    Only tuples (immutable packet payloads) are memoized; lists stay
    uncached because callers may mutate them between merges.
    """
    if type(entries) is tuple:
        hit = _ROWS_CACHE.get(id(entries))
        if hit is not None and hit[0] is entries:
            return hit[1]
        value = _rows_value(tuple((e.address, e.metric, e.role) for e in entries))
        if len(_ROWS_CACHE) >= _ROWS_CACHE_MAX:
            _ROWS_CACHE.clear()
        _ROWS_CACHE[id(entries)] = (entries, value)
        return value
    return _rows_value(tuple((e.address, e.metric, e.role) for e in entries))


#: Id-keyed memo of the *columnar* view of a ROUTING payload (see
#: :class:`PacketColumns`).  Same lifetime rules as ``_ROWS_CACHE``:
#: each value pins the entries tuple so its id stays valid.
_COLUMNS_CACHE: dict = {}
_COLUMNS_CACHE_MAX = 65_536


class PacketColumns:
    """Column view of a ROUTING payload for the vectorized DV merge.

    ``addr``/``cand``/``role`` are aligned int64 arrays over the packet
    rows, with ``cand`` already the candidate metric (advertised + 1).
    ``filtered(max_metric)`` applies the broadcast-address and metric-cap
    masks once per (packet, max_metric) pair — every receiver with the
    same cap shares the result.  Row order is preserved so notification
    order matches the scalar per-row loop.
    """

    __slots__ = ("addr", "cand", "role", "role_of", "has_dups", "_filtered")

    def __init__(self, addr, cand, role, role_of: dict, has_dups: bool) -> None:
        self.addr = addr
        self.cand = cand
        self.role = role
        self.role_of = role_of
        self.has_dups = has_dups
        self._filtered: dict = {}

    @classmethod
    def from_rows(cls, rows: tuple, role_of: dict) -> "PacketColumns":
        n = len(rows)
        mat = _np.array(rows, dtype=_np.int64).reshape(n, 3)
        addr = _np.ascontiguousarray(mat[:, 0])
        cand = mat[:, 1] + 1
        role = _np.ascontiguousarray(mat[:, 2])
        return cls(addr, cand, role, role_of, len({r[0] for r in rows}) != n)

    def filtered(self, max_metric: int, src: int) -> tuple:
        """``(addr, cand, role, max_addr, nsrc)`` with rows beyond
        ``max_metric`` or addressed to broadcast masked out, plus the
        ``addr != src`` mask; memoized per (cap, sender).  A broadcast
        hello is decoded once and merged by every receiver with the same
        cap and sender, so the masks are computed once per transmission."""
        key = (max_metric, src)
        hit = self._filtered.get(key)
        if hit is None:
            keep = (self.cand <= max_metric) & (self.addr != BROADCAST_ADDRESS)
            if keep.all():
                addr, cand, role = self.addr, self.cand, self.role
            else:
                addr = self.addr[keep]
                cand = self.cand[keep]
                role = self.role[keep]
            max_addr = int(addr.max()) if addr.shape[0] else 0
            hit = (addr, cand, role, max_addr, addr != src)
            self._filtered[key] = hit
        return hit


def prime_columns(entries: tuple, columns: "PacketColumns") -> None:
    """Seed :func:`columns_of` for a freshly decoded entries tuple whose
    column arrays the caller already holds (the vectorized decoder)."""
    if len(_COLUMNS_CACHE) >= _COLUMNS_CACHE_MAX:
        _COLUMNS_CACHE.clear()
    _COLUMNS_CACHE[id(entries)] = (entries, columns)


def columns_of(entries) -> "PacketColumns":
    """The memoized :class:`PacketColumns` view of an entries sequence.

    Requires numpy; callers (the columnar routing store) are themselves
    numpy-gated.  Only tuples are memoized, mirroring :func:`rows_of`.
    """
    if type(entries) is tuple:
        hit = _COLUMNS_CACHE.get(id(entries))
        if hit is not None and hit[0] is entries:
            return hit[1]
        rows, role_of = rows_of(entries)
        columns = PacketColumns.from_rows(rows, role_of)
        if len(_COLUMNS_CACHE) >= _COLUMNS_CACHE_MAX:
            _COLUMNS_CACHE.clear()
        _COLUMNS_CACHE[id(entries)] = (entries, columns)
        return columns
    rows, role_of = rows_of(entries)
    return PacketColumns.from_rows(rows, role_of)


@dataclass(frozen=True)
class RoutingPacket:
    """Hello packet: broadcast of the sender's routing table."""

    src: int
    entries: tuple  # tuple[RoutingEntry, ...]
    dst: int = BROADCAST_ADDRESS

    type: "PacketType" = PacketType.ROUTING

    def __post_init__(self) -> None:
        if len(self.entries) > MAX_ROUTING_ENTRIES:
            raise ValueError(
                f"{len(self.entries)} routing entries exceed the "
                f"per-packet maximum {MAX_ROUTING_ENTRIES}"
            )
        object.__setattr__(self, "entries", tuple(self.entries))


@dataclass(frozen=True)
class DataPacket:
    """Unreliable application data, forwarded hop-by-hop via ``via``."""

    dst: int
    src: int
    via: int
    payload: bytes

    type: "PacketType" = PacketType.DATA

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_DATA_PAYLOAD:
            raise ValueError(
                f"DATA payload {len(self.payload)} B exceeds {MAX_DATA_PAYLOAD} B"
            )


@dataclass(frozen=True)
class _ControlBase:
    """Shared shape of the reliable-stream control packets."""

    dst: int
    src: int
    via: int
    seq_id: int
    number: int

    def __post_init__(self) -> None:
        if not 0 <= self.seq_id <= 0xFF:
            raise ValueError(f"seq_id {self.seq_id} does not fit u8")
        if not 0 <= self.number <= 0xFFFF:
            raise ValueError(f"number {self.number} does not fit u16")


@dataclass(frozen=True)
class NeedAckPacket(_ControlBase):
    """A single reliable application packet; the receiver must ACK it."""

    payload: bytes = b""
    type: "PacketType" = PacketType.NEED_ACK

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.payload) > MAX_CONTROL_PAYLOAD:
            raise ValueError(
                f"NEED_ACK payload {len(self.payload)} B exceeds {MAX_CONTROL_PAYLOAD} B"
            )


@dataclass(frozen=True)
class AckPacket(_ControlBase):
    """Acknowledges ``number`` of stream ``seq_id`` (or a NEED_ACK)."""

    type: "PacketType" = PacketType.ACK


@dataclass(frozen=True)
class LostPacket(_ControlBase):
    """Receiver-side report: fragment ``number`` of ``seq_id`` is missing."""

    type: "PacketType" = PacketType.LOST


@dataclass(frozen=True)
class SyncPacket(_ControlBase):
    """Opens a large-payload stream: ``number`` fragments, ``total_bytes``."""

    total_bytes: int = 0
    type: "PacketType" = PacketType.SYNC

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.total_bytes <= 0xFFFFFFFF:
            raise ValueError(f"total_bytes {self.total_bytes} does not fit u32")


@dataclass(frozen=True)
class XLDataPacket(_ControlBase):
    """Fragment ``number`` (0-based) of large-payload stream ``seq_id``."""

    payload: bytes = b""
    type: "PacketType" = PacketType.XL_DATA

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.payload) > MAX_CONTROL_PAYLOAD:
            raise ValueError(
                f"XL_DATA fragment {len(self.payload)} B exceeds {MAX_CONTROL_PAYLOAD} B"
            )


#: Every packet class the serializer knows.
Packet = Union[
    RoutingPacket,
    DataPacket,
    NeedAckPacket,
    AckPacket,
    LostPacket,
    SyncPacket,
    XLDataPacket,
]

#: Packets that carry a next-hop via field (everything but ROUTING).
ViaPacket = Union[DataPacket, NeedAckPacket, AckPacket, LostPacket, SyncPacket, XLDataPacket]


def has_via(packet: Packet) -> bool:
    """Whether the packet travels point-to-point through a next hop."""
    return not isinstance(packet, RoutingPacket)
