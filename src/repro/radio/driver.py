"""The half-duplex radio state machine.

:class:`Radio` is the simulation stand-in for "RadioLib on an SX127x".
Protocol code interacts with it exactly the way LoRaMesher interacts with
its radio:

* ``start_receive()`` puts the radio in continuous RX,
* ``transmit(payload)`` leaves RX, emits the frame on the medium (the
  radio is deaf for the frame's airtime), then fires ``on_tx_done`` and
  returns to RX automatically (matching LoRaMesher's post-TX behaviour),
* received frames arrive via the ``on_receive`` callback as
  :class:`~repro.radio.frames.ReceivedFrame` records, including
  CRC-corrupted ones (collisions),
* ``channel_activity()`` is a CAD poll used for listen-before-talk.

Energy accounting hooks record time spent per state so the metrics layer
can compute battery figures without the driver knowing about joules.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Optional

from repro.medium.channel import Medium, ReceptionOutcome
from repro.phy.airtime import time_on_air
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import Position
from repro.radio.frames import ReceivedFrame
from repro.radio.states import RadioState
from repro.sim.kernel import Simulator

logger = logging.getLogger(__name__)


class RadioError(Exception):
    """Base error for radio driver misuse."""


class RadioBusyError(RadioError):
    """Raised when ``transmit`` is called while a transmission is active."""


class Radio:
    """A simulated SX127x attached to a :class:`~repro.medium.channel.Medium`.

    Parameters
    ----------
    sim:
        The shared simulation kernel.
    medium:
        The shared channel; the radio attaches itself on construction.
    node_id:
        Unique identity on the medium (LoRaMesher's 16-bit address works).
    position:
        Planar position in metres; mutable via :meth:`move_to` for
        mobility scenarios.
    params:
        Modulation parameters used for both TX and RX (LoRaMesher runs the
        whole mesh on one shared parameter set).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        node_id: int,
        position: Position,
        params: LoRaParams,
    ) -> None:
        self._sim = sim
        self._medium = medium
        self.node_id = node_id
        self._position = position
        self._params = params
        self._state = RadioState.STANDBY
        self._state_since = sim.now
        self._rx_since: Optional[float] = None
        self._tx_end: Optional[float] = None
        self._state_time: Dict[RadioState, float] = {s: 0.0 for s in RadioState}
        self._powered = True

        #: Protocol callback for every demodulated frame (incl. CRC-bad).
        self.on_receive: Optional[Callable[[ReceivedFrame], None]] = None
        #: Protocol callback after each completed transmission.
        self.on_tx_done: Optional[Callable[[], None]] = None

        # Counters (driver-level diagnostics; the metrics layer aggregates).
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_crc_failed = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.tx_airtime_s = 0.0
        # Built once: transmit() runs for every frame.
        self._txdone_label = f"radio{node_id} txdone"

        medium.attach(self)
        # Mirror RX state into the medium so frame completion can account
        # for out-of-range listeners in aggregate (see Medium docs).
        medium.register_state_reporter(node_id, self._rx_since, params)

    # ------------------------------------------------------------------
    # Properties the medium consults
    # ------------------------------------------------------------------
    @property
    def position(self) -> Position:
        """Current planar position (metres)."""
        return self._position

    @property
    def rx_params(self) -> Optional[LoRaParams]:
        """Modulation the radio listens with, or None when not in RX."""
        return self._params if self._state is RadioState.RX else None

    def listening_throughout(self, start: float, end: float) -> bool:
        """Continuous-RX check the medium uses for half-duplex semantics."""
        if not self._powered or self._state is not RadioState.RX:
            return False
        return self._rx_since is not None and self._rx_since <= start

    def rx_params_throughout(self, start: float, end: float) -> Optional[LoRaParams]:
        """``rx_params`` and :meth:`listening_throughout` folded into one
        call — the medium asks both questions for every attached radio on
        every completed frame."""
        if (
            self._state is not RadioState.RX
            or not self._powered
            or self._rx_since is None
            or self._rx_since > start
        ):
            return None
        return self._params

    def deliver(self, outcome: ReceptionOutcome) -> None:
        """Medium entry point: a frame finished and this radio heard it."""
        if not self._powered:
            return
        frame = ReceivedFrame(
            payload=outcome.payload,
            rssi_dbm=outcome.rssi_dbm,
            snr_db=outcome.snr_db,
            crc_ok=outcome.crc_ok,
            received_at=self._sim.now,
            params=outcome.params,
            sender_id=outcome.sender_id,
        )
        if frame.crc_ok:
            self.frames_received += 1
            self.bytes_received += frame.size
        else:
            self.frames_crc_failed += 1
        if self.on_receive is not None:
            self.on_receive(frame)

    # ------------------------------------------------------------------
    # State control
    # ------------------------------------------------------------------
    @property
    def state(self) -> RadioState:
        """Current operating state."""
        return self._state

    @property
    def params(self) -> LoRaParams:
        """Current modulation parameters."""
        return self._params

    def configure(self, params: LoRaParams) -> None:
        """Retune the radio; drops out of RX momentarily like real silicon
        (a reception in progress across the retune is lost)."""
        was_rx = self._state is RadioState.RX
        self._enter(RadioState.STANDBY)
        self._params = params
        self._medium.notify_rx_state(self.node_id, self._rx_since, params)
        if was_rx:
            self.start_receive()

    def start_receive(self) -> None:
        """Enter continuous receive mode."""
        self._require_powered()
        if self._state is RadioState.TX:
            raise RadioBusyError(f"radio {self.node_id}: cannot RX during TX")
        self._enter(RadioState.RX)

    def standby(self) -> None:
        """Enter standby (deaf, low power, instantly ready)."""
        self._require_powered()
        if self._state is RadioState.TX:
            raise RadioBusyError(f"radio {self.node_id}: cannot standby during TX")
        self._enter(RadioState.STANDBY)

    def sleep(self) -> None:
        """Enter sleep (deaf, lowest power)."""
        self._require_powered()
        if self._state is RadioState.TX:
            raise RadioBusyError(f"radio {self.node_id}: cannot sleep during TX")
        self._enter(RadioState.SLEEP)

    def power_off(self) -> None:
        """Simulate node death: detach from the medium, freeze counters."""
        if not self._powered:
            return
        self._enter(RadioState.SLEEP)
        self._powered = False
        self._medium.detach(self.node_id)

    def power_on(self) -> None:
        """Re-attach a previously powered-off radio (node recovery)."""
        if self._powered:
            return
        self._powered = True
        self._medium.attach(self)
        self._medium.register_state_reporter(self.node_id, self._rx_since, self._params)
        self._enter(RadioState.STANDBY)

    @property
    def powered(self) -> bool:
        """Whether the node is alive on the medium."""
        return self._powered

    def move_to(self, position: Position) -> None:
        """Relocate the radio (mobility support).

        Notifies the medium so cached reachability sets and memoized link
        qualities are recomputed against the new geometry.
        """
        if position == self._position:
            return
        self._position = position
        self._medium.notify_moved(self.node_id)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, payload: bytes) -> float:
        """Put ``payload`` on the air; returns the frame's airtime.

        The radio leaves RX for the duration (half-duplex), then fires
        ``on_tx_done`` and re-enters continuous RX — the same automatic
        RX-resume LoRaMesher configures.
        """
        self._require_powered()
        if self._state is RadioState.TX:
            raise RadioBusyError(f"radio {self.node_id}: transmit while TX in progress")
        if len(payload) > 255:
            raise RadioError(f"payload {len(payload)} B exceeds the 255 B LoRa PHY limit")
        airtime = time_on_air(len(payload), self._params)
        self._enter(RadioState.TX)
        self._tx_end = self._sim.now + airtime
        self._medium.begin_transmission(
            self.node_id, self._position, self._params, payload, airtime
        )
        self.frames_sent += 1
        self.bytes_sent += len(payload)
        self.tx_airtime_s += airtime
        self._sim.schedule(airtime, self._finish_tx, label=self._txdone_label)
        return airtime

    def _finish_tx(self) -> None:
        self._tx_end = None
        self._enter(RadioState.RX)
        if self.on_tx_done is not None:
            self.on_tx_done()

    @property
    def transmitting(self) -> bool:
        """Whether a transmission is currently in progress."""
        return self._state is RadioState.TX

    # ------------------------------------------------------------------
    # Channel sensing
    # ------------------------------------------------------------------
    def channel_activity(self) -> bool:
        """CAD-style poll: is the channel audibly busy right now?

        Real CAD takes ~2 symbol times; we model it as instantaneous but
        callers (the mesher's listen-before-talk) add their own deferral,
        which dominates.
        """
        self._require_powered()
        return self._medium.channel_busy(
            self._position, self._params, exclude_sender=self.node_id
        )

    # ------------------------------------------------------------------
    # Energy bookkeeping
    # ------------------------------------------------------------------
    def state_times(self) -> Dict[RadioState, float]:
        """Cumulative seconds spent per state, including the current stay."""
        times = dict(self._state_time)
        times[self._state] += self._sim.now - self._state_since
        return times

    # ------------------------------------------------------------------
    def _enter(self, state: RadioState) -> None:
        now = self._sim.now
        self._state_time[self._state] += now - self._state_since
        self._state = state
        self._state_since = now
        self._rx_since = now if state is RadioState.RX else None
        self._medium.notify_rx_state(self.node_id, self._rx_since, self._params)

    def _require_powered(self) -> None:
        if not self._powered:
            raise RadioError(f"radio {self.node_id} is powered off")

    def __repr__(self) -> str:
        return (
            f"Radio(node={self.node_id:#06x}, state={self._state.value}, "
            f"pos={self._position})"
        )
