"""Simulated SX127x-class radio driver.

LoRaMesher's protocol logic talks to its radio through a narrow driver
interface (RadioLib on real hardware).  :class:`~repro.radio.driver.Radio`
reproduces that interface on top of the simulated medium: a half-duplex
state machine (SLEEP / STANDBY / RX / TX / CAD) with tx-done and rx-done
callbacks, CRC reporting, and channel-activity detection.
"""

from repro.radio.driver import Radio, RadioError, RadioBusyError
from repro.radio.states import RadioState
from repro.radio.frames import ReceivedFrame

__all__ = ["Radio", "RadioState", "ReceivedFrame", "RadioError", "RadioBusyError"]
