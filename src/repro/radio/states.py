"""Radio operating states, mirroring the SX127x operating modes."""

from __future__ import annotations

import enum


class RadioState(enum.Enum):
    """Operating mode of the transceiver.

    The SX127x is strictly half-duplex: it is deaf while in ``TX`` and
    cannot transmit while a reception would be in progress.  ``CAD`` is the
    brief channel-activity-detection mode used for listen-before-talk.
    """

    SLEEP = "sleep"
    STANDBY = "standby"
    RX = "rx"
    TX = "tx"
    CAD = "cad"

    @property
    def can_hear(self) -> bool:
        """Whether frames on the air can be demodulated in this state."""
        return self is RadioState.RX
