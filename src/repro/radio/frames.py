"""Frame record handed from the radio driver to the protocol layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.modulation import LoRaParams


@dataclass(frozen=True, slots=True)
class ReceivedFrame:
    """One frame as seen by the protocol layer.

    ``crc_ok`` is False for frames corrupted by a collision — LoRaMesher
    drops those at the packet service, exactly like the firmware drops
    RxDone interrupts flagged with PayloadCrcError.
    """

    payload: bytes
    rssi_dbm: float
    snr_db: float
    crc_ok: bool
    received_at: float
    params: LoRaParams

    @property
    def size(self) -> int:
        """PHY payload length in bytes."""
        return len(self.payload)
