"""Frame record handed from the radio driver to the protocol layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.modulation import LoRaParams


@dataclass(frozen=True, slots=True)
class ReceivedFrame:
    """One frame as seen by the protocol layer.

    ``crc_ok`` is False for frames corrupted by a collision — LoRaMesher
    drops those at the packet service, exactly like the firmware drops
    RxDone interrupts flagged with PayloadCrcError.
    """

    payload: bytes
    rssi_dbm: float
    snr_db: float
    crc_ok: bool
    received_at: float
    params: LoRaParams
    #: Simulator-side identity of the transmitting radio (-1 when
    #: unknown).  Real LoRa hardware has no such field — protocol logic
    #: must never branch on it; it exists for diagnostics only (the
    #: ping-pong forwarding metric and the invariant checker).
    sender_id: int = -1

    @property
    def size(self) -> int:
        """PHY payload length in bytes."""
        return len(self.payload)
