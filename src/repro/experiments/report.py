"""Fixed-width table rendering for benchmark output.

Every bench prints its table through these helpers, so the harness output
reads like the paper's tables: a title line, a header row, aligned cells.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> str:
    """Render an aligned text table."""
    rendered: List[List[str]] = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, header has {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence], *, title: str = "") -> None:
    """Print an aligned text table (with a leading blank line)."""
    print()
    print(format_table(headers, rows, title=title))
