"""Result-file regression comparison.

Benchmarks export their rows via :mod:`repro.experiments.export`; this
module diffs two such documents (e.g. "last release" vs "this branch")
with per-column tolerances, so substrate changes that silently move
experiment numbers get caught in review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.export import ExperimentRecord, load_records


@dataclass(frozen=True)
class Difference:
    """One detected deviation between baseline and candidate."""

    experiment_id: str
    kind: str  # "missing", "extra", "shape", "value"
    detail: str


@dataclass
class ComparisonReport:
    """Outcome of comparing two result documents."""

    differences: List[Difference] = field(default_factory=list)
    compared_experiments: int = 0
    compared_cells: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing deviated beyond tolerance."""
        return not self.differences

    def format(self) -> str:
        """Human-readable report."""
        if self.ok:
            return (
                f"OK: {self.compared_experiments} experiments, "
                f"{self.compared_cells} cells within tolerance"
            )
        lines = [f"{len(self.differences)} difference(s):"]
        for diff in self.differences:
            lines.append(f"  [{diff.experiment_id}] {diff.kind}: {diff.detail}")
        return "\n".join(lines)


def compare_records(
    baseline: List[ExperimentRecord],
    candidate: List[ExperimentRecord],
    *,
    rel_tolerance: float = 0.10,
    abs_tolerance: float = 1e-9,
) -> ComparisonReport:
    """Compare two record lists cell by cell.

    Numeric cells must agree within ``rel_tolerance`` (relative) or
    ``abs_tolerance`` (absolute, for near-zero values); non-numeric cells
    must match exactly.  Missing/extra experiments and shape mismatches
    are reported as differences, never exceptions — the report is for
    humans and CI gates.
    """
    report = ComparisonReport()
    base_by_id = {record.experiment_id: record for record in baseline}
    cand_by_id = {record.experiment_id: record for record in candidate}

    for experiment_id in base_by_id:
        if experiment_id not in cand_by_id:
            report.differences.append(
                Difference(experiment_id, "missing", "experiment absent from candidate")
            )
    for experiment_id in cand_by_id:
        if experiment_id not in base_by_id:
            report.differences.append(
                Difference(experiment_id, "extra", "experiment absent from baseline")
            )

    for experiment_id, base in base_by_id.items():
        cand = cand_by_id.get(experiment_id)
        if cand is None:
            continue
        report.compared_experiments += 1
        if base.columns != cand.columns or len(base.rows) != len(cand.rows):
            report.differences.append(
                Difference(
                    experiment_id,
                    "shape",
                    f"columns/rows {len(base.columns)}x{len(base.rows)} vs "
                    f"{len(cand.columns)}x{len(cand.rows)}",
                )
            )
            continue
        for row_index, (brow, crow) in enumerate(zip(base.rows, cand.rows)):
            for col_index, (b, c) in enumerate(zip(brow, crow)):
                report.compared_cells += 1
                label = (
                    base.columns[col_index]
                    if col_index < len(base.columns)
                    else f"col{col_index}"
                )
                if not _cell_matches(b, c, rel_tolerance, abs_tolerance):
                    report.differences.append(
                        Difference(
                            experiment_id,
                            "value",
                            f"row {row_index} {label}: {b!r} -> {c!r}",
                        )
                    )
    return report


def compare_files(
    baseline_path: Union[str, Path],
    candidate_path: Union[str, Path],
    **kwargs,
) -> ComparisonReport:
    """Load two exported documents and compare them."""
    return compare_records(
        load_records(baseline_path), load_records(candidate_path), **kwargs
    )


def _cell_matches(b, c, rel: float, abs_tol: float) -> bool:
    b_num, c_num = _as_number(b), _as_number(c)
    if b_num is not None and c_num is not None:
        if b_num == c_num:
            return True
        return abs(c_num - b_num) <= max(abs_tol, rel * abs(b_num))
    return b == c


def _as_number(value) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    return None
