"""Parameter sweeps with seed repetition.

The benchmarks sweep one or two knobs (network size, hello period, loss
rate...) and repeat each point over several seeds; these helpers keep the
iteration and aggregation uniform across bench files.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.metrics.stats import confidence_interval_95, mean


def sweep_grid(**axes: Sequence[Any]) -> Iterator[Dict[str, Any]]:
    """Cartesian product of named axes, yielded as dicts.

    >>> list(sweep_grid(n=[2, 3], sf=[7]))
    [{'n': 2, 'sf': 7}, {'n': 3, 'sf': 7}]
    """
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def repeat_seeds(
    fn: Callable[[int], float], seeds: Iterable[int]
) -> Tuple[float, float, List[float]]:
    """Run ``fn(seed)`` per seed; returns (mean, 95%-CI half-width, raw).

    Points where ``fn`` returns None (e.g. convergence timeout) are kept
    out of the mean but preserved in the raw list as ``float('nan')`` so
    callers can report how many trials failed.
    """
    raw: List[float] = []
    valid: List[float] = []
    for seed in seeds:
        value = fn(seed)
        if value is None:
            raw.append(float("nan"))
        else:
            raw.append(float(value))
            valid.append(float(value))
    if not valid:
        return float("nan"), float("nan"), raw
    return mean(valid), confidence_interval_95(valid), raw
