"""Parameter sweeps with seed repetition.

The benchmarks sweep one or two knobs (network size, hello period, loss
rate...) and repeat each point over several seeds; these helpers keep the
iteration and aggregation uniform across bench files.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.metrics.stats import confidence_interval_95, mean

# One persistent pool per worker count, shared across run_parallel calls
# (see shared_pool): fork/spawn cost is paid once per sweep session, not
# once per sweep stage.
_POOLS: Dict[int, multiprocessing.pool.Pool] = {}


def shared_pool(workers: int) -> multiprocessing.pool.Pool:
    """A process pool reused across :func:`run_parallel` calls.

    Multi-stage benchmarks call ``run_parallel`` once per sweep axis;
    respawning interpreters each time costs more than some of the points
    themselves.  The pool for each worker count is created on first use
    and torn down once at interpreter exit.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = multiprocessing.Pool(processes=workers)
        _POOLS[workers] = pool
    return pool


def _close_pools() -> None:
    for pool in _POOLS.values():
        pool.terminate()
        pool.join()
    _POOLS.clear()


atexit.register(_close_pools)


def derive_seed(master: int, index: int) -> int:
    """A per-point seed derived deterministically from a master seed.

    Uses SHA-256 of ``"{master}:{index}"`` so the derivation is stable
    across processes, platforms, and Python versions (unlike ``hash()``,
    which is salted per process) — a parallel sweep and a serial sweep
    hand every point the identical seed.
    """
    digest = hashlib.sha256(f"{master}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def run_parallel(
    points: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    reuse_pool: bool = True,
) -> List[Any]:
    """Map ``fn`` over sweep points, optionally across worker processes.

    Results come back in input order regardless of which worker finished
    first, so a parallel sweep is indistinguishable from the serial one —
    each simulation point is seeded explicitly (see :func:`derive_seed`),
    never from ambient process state.

    ``workers=None`` (or <= 1) runs serially in-process, which keeps the
    helper usable for quick runs and for callers whose ``fn`` is not
    picklable.  With more workers, ``fn`` must be a module-level callable
    (the usual :mod:`multiprocessing` constraint).

    ``chunksize=None`` (the default) derives ``max(1, len(points) // (4 *
    workers))`` — roughly four batches per worker, which amortises the
    per-point IPC overhead on large sweeps while still load-balancing
    uneven point runtimes.  Pass an explicit ``chunksize`` to override.

    ``reuse_pool=True`` (the default) serves the map from a persistent
    :func:`shared_pool`, so back-to-back sweep stages skip the per-call
    interpreter spawn; pass ``reuse_pool=False`` to get a private pool
    torn down when the call returns.
    """
    points = list(points)
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if chunksize is not None and chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if workers is None or workers <= 1 or len(points) <= 1:
        return [fn(point) for point in points]
    if chunksize is None:
        chunksize = max(1, len(points) // (4 * workers))
    if reuse_pool:
        return shared_pool(min(workers, len(points))).map(fn, points, chunksize)
    with multiprocessing.Pool(processes=min(workers, len(points))) as pool:
        return pool.map(fn, points, chunksize)


def sweep_grid(**axes: Sequence[Any]) -> Iterator[Dict[str, Any]]:
    """Cartesian product of named axes, yielded as dicts.

    >>> list(sweep_grid(n=[2, 3], sf=[7]))
    [{'n': 2, 'sf': 7}, {'n': 3, 'sf': 7}]
    """
    names = list(axes)
    for combo in itertools.product(*(axes[name] for name in names)):
        yield dict(zip(names, combo))


def repeat_seeds(
    fn: Callable[[int], float],
    seeds: Iterable[int],
    *,
    workers: Optional[int] = None,
) -> Tuple[float, float, List[float]]:
    """Run ``fn(seed)`` per seed; returns (mean, 95%-CI half-width, raw).

    Points where ``fn`` returns None (e.g. convergence timeout) are kept
    out of the mean but preserved in the raw list as ``float('nan')`` so
    callers can report how many trials failed.

    ``workers`` fans the seeds out over processes via
    :func:`run_parallel`; aggregation order (and therefore every returned
    number) is identical to the serial run.
    """
    results = run_parallel(list(seeds), fn, workers=workers)
    raw: List[float] = []
    valid: List[float] = []
    for value in results:
        if value is None:
            raw.append(float("nan"))
        else:
            raw.append(float(value))
            valid.append(float(value))
    if not valid:
        return float("nan"), float("nan"), raw
    return mean(valid), confidence_interval_95(valid), raw
