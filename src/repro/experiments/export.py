"""JSON export of experiment results.

Benchmarks print human-readable tables; downstream analysis (plotting,
regression tracking across commits) wants machine-readable records.  The
exporter serialises :class:`~repro.experiments.runner.RunResult` objects
and free-form row tables into a stable JSON schema.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.experiments.runner import RunResult

SCHEMA_VERSION = 1


@dataclass
class ExperimentRecord:
    """One exported experiment: identity, parameters, measured rows."""

    experiment_id: str
    description: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    columns: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one measurement row (must match ``columns`` width)."""
        if self.columns and len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, columns define {len(self.columns)}"
            )
        self.rows.append([_jsonable(v) for v in values])


def run_result_summary(result: RunResult) -> Dict[str, Any]:
    """The standard scalar summary of one RunResult.

    When the run was sampled (``run_protocol(..., sample_period_s=...)``)
    the summary additionally carries a ``timeseries`` key: the sampler's
    period and every retained sample point, ready for plotting.
    """
    summary = _scalar_summary(result)
    timeseries = result.timeseries
    if timeseries is not None:
        summary["timeseries"] = timeseries
    return summary


def _scalar_summary(result: RunResult) -> Dict[str, Any]:
    return {
        "protocol": result.protocol.value,
        "duration_s": result.duration_s,
        "convergence_time_s": result.convergence_time_s,
        "pdr": result.pdr,
        "mean_latency_s": result.mean_latency_s,
        "sent": result.recorder.total_sent(),
        "delivered": result.recorder.total_delivered(),
        "duplicates": result.recorder.total_duplicates(),
        "frames_sent": result.overhead.frames_sent,
        "bytes_sent": result.overhead.bytes_sent,
        "airtime_s": result.overhead.airtime_s,
        "airtime_per_delivered_byte_ms": _jsonable(
            result.overhead.airtime_per_delivered_byte_ms
        ),
        "duty_cycle_peak": result.overhead.duty_cycle_peak,
    }


def export_records(
    records: Sequence[ExperimentRecord],
    path: Union[str, Path],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write records to ``path`` as a single JSON document; returns it."""
    path = Path(path)
    document = {
        "schema_version": SCHEMA_VERSION,
        "metadata": metadata or {},
        "experiments": [asdict(record) for record in records],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_records(path: Union[str, Path]) -> List[ExperimentRecord]:
    """Read back a document written by :func:`export_records`."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {version!r}")
    return [
        ExperimentRecord(
            experiment_id=entry["experiment_id"],
            description=entry["description"],
            parameters=entry["parameters"],
            columns=entry["columns"],
            rows=entry["rows"],
        )
        for entry in document["experiments"]
    ]


def _jsonable(value: Any) -> Any:
    """Map non-JSON floats to strings so round-trips stay lossless-ish."""
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
    return value
