"""The experiment harness behind ``benchmarks/``.

* :mod:`repro.experiments.runner` — builds a network of the requested
  protocol (mesh / flooding / star / oracle), attaches probe traffic and
  a flow recorder, runs it, and returns a uniform result record,
* :mod:`repro.experiments.sweep` — parameter sweeps with per-point seed
  repetition and aggregation,
* :mod:`repro.experiments.report` — fixed-width table printing so every
  bench emits the same row format the paper's tables would.
"""

from repro.experiments.runner import Protocol, RunResult, TrafficSpec, run_protocol
from repro.experiments.report import format_table, print_table
from repro.experiments.sweep import derive_seed, repeat_seeds, run_parallel, sweep_grid
from repro.experiments.ascii_plot import ascii_plot, print_plot
from repro.experiments.export import ExperimentRecord, export_records, load_records
from repro.experiments.regression import ComparisonReport, compare_files, compare_records

__all__ = [
    "Protocol",
    "TrafficSpec",
    "RunResult",
    "run_protocol",
    "print_table",
    "format_table",
    "sweep_grid",
    "repeat_seeds",
    "run_parallel",
    "derive_seed",
    "ascii_plot",
    "print_plot",
    "ExperimentRecord",
    "export_records",
    "load_records",
    "ComparisonReport",
    "compare_files",
    "compare_records",
]
