"""ASCII line/scatter plots for figure-shaped benchmark output.

The paper's evaluation has figure-shaped artifacts (curves over a swept
parameter) as well as tables.  The benches render those as fixed-width
ASCII charts so the figure's *shape* — slopes, crossovers, plateaus — is
visible directly in the harness output, with the exact series printed as
a table beside it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Dict[str, Series],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one shared-axes ASCII chart.

    Points outside a degenerate range are handled by padding the axes;
    NaN/inf points are skipped.  Returns the chart as a string.
    """
    if not series:
        raise ValueError("ascii_plot needs at least one series")
    points = [
        (x, y)
        for data in series.values()
        for x, y in data
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        raise ValueError("no finite points to plot")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_min, x_max = x_min - 1.0, x_max + 1.0
    if y_max == y_min:
        y_min, y_max = y_min - 1.0, y_max + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        return (height - 1 - row), col

    for (name, data), marker in zip(series.items(), _MARKERS):
        for x, y in data:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            row, col = to_cell(x, y)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"  [{y_label}]")
    y_top = _format_tick(y_max)
    y_bottom = _format_tick(y_min)
    label_width = max(len(y_top), len(y_bottom))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_width)
        elif i == height - 1:
            prefix = y_bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_left = _format_tick(x_min)
    x_right = _format_tick(x_max)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(f"{' ' * label_width}  {x_left}{' ' * gap}{x_right}")
    if x_label:
        lines.append(f"{' ' * label_width}  [{x_label}]")
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def print_plot(series: Dict[str, Series], **kwargs) -> None:
    """Print an :func:`ascii_plot` (with a leading blank line)."""
    print()
    print(ascii_plot(series, **kwargs))


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"
