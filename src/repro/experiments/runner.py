"""Protocol-agnostic experiment execution.

:func:`run_protocol` is the one entry point every benchmark uses: it
builds the requested protocol stack over a placement, attaches probe
traffic and a :class:`~repro.metrics.collect.FlowRecorder`, runs the
scenario, and returns a :class:`RunResult` with the measurements every
table needs (PDR, latency, overhead, convergence time).

Because all four protocols run on the identical kernel/PHY/medium/radio
substrate, differences in the result rows isolate the protocol itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.aodv import AodvNetwork
from repro.baselines.flooding import FloodingNetwork
from repro.baselines.idealrouter import build_oracle_network
from repro.baselines.star import StarNetwork
from repro.metrics.collect import FlowRecorder, OverheadSummary, attach_recorder, overhead_summary
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.obs.instrument import instrument_flows, instrument_network
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.store import EventStore, StoreRecorder
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import PathLossModel, Position
from repro.sim.rng import RngRegistry
from repro.verify.faults import FaultInjector, FaultPlan
from repro.verify.invariants import InvariantChecker
from repro.workload.probes import PROBE_OVERHEAD
from repro.workload.traffic import PeriodicSender, PoissonSender


class Protocol(enum.Enum):
    """Which stack to run the scenario on."""

    MESH = "mesh"
    FLOODING = "flooding"
    STAR = "star"
    ORACLE = "oracle"
    AODV = "aodv"


@dataclass(frozen=True)
class TrafficSpec:
    """One probe flow, by placement index (resolved to addresses later)."""

    src_index: int
    dst_index: int
    period_s: float = 60.0
    payload_size: int = max(24, PROBE_OVERHEAD)
    poisson: bool = False

    def __post_init__(self) -> None:
        if self.src_index == self.dst_index:
            raise ValueError("a flow needs distinct endpoints")
        if self.period_s <= 0:
            raise ValueError("period must be positive")


@dataclass
class RunResult:
    """Everything a benchmark row is computed from."""

    protocol: Protocol
    recorder: FlowRecorder
    network: object  # MeshNetwork | FloodingNetwork | StarNetwork
    duration_s: float
    convergence_time_s: Optional[float]
    overhead: OverheadSummary
    #: Populated when ``run_protocol(..., sample_period_s=...)`` was given:
    #: the sampler whose ring holds the run's health trajectory.
    sampler: Optional[TimeSeriesSampler] = None
    #: Populated when ``run_protocol(..., verify=True)`` was given: the
    #: invariant checker that audited the run (violations, observations).
    checker: Optional[InvariantChecker] = None
    #: Populated when ``run_protocol(..., store=...)`` was given: the
    #: path of the WAL-mode event store the run streamed into (serve it
    #: with ``repro serve`` or replay it with ``repro replay``).
    store_path: Optional[Path] = None
    #: Populated when ``run_protocol(..., shards=...)`` ran the scenario
    #: on the sharded multi-process runner: the merged
    #: :class:`~repro.sim.shard.ShardedRunResult` (fingerprint, per-shard
    #: load stats, boundary-traffic counts).  ``network`` is None on a
    #: sharded run — the mesh lived in worker processes.
    sharded: Optional[object] = None

    @property
    def pdr(self) -> float:
        """Aggregate packet-delivery ratio."""
        return self.recorder.aggregate_pdr()

    @property
    def mean_latency_s(self) -> Optional[float]:
        """Mean delivery latency across flows (None if nothing arrived)."""
        latencies = self.recorder.all_latencies()
        return sum(latencies) / len(latencies) if latencies else None

    @property
    def timeseries(self) -> Optional[Dict]:
        """JSON-ready sampled time series (None when sampling was off)."""
        return self.sampler.to_dict() if self.sampler is not None else None


def run_protocol(
    protocol: Protocol,
    positions: Sequence[Position],
    traffic: Sequence[TrafficSpec],
    *,
    duration_s: float,
    seed: int = 0,
    config: Optional[MesherConfig] = None,
    params: Optional[LoRaParams] = None,
    pathloss: Optional[PathLossModel] = None,
    converge_first: bool = True,
    converge_timeout_s: float = 3600.0,
    drain_s: float = 120.0,
    star_gateway_index: Optional[int] = None,
    sample_period_s: Optional[float] = None,
    verify: bool = False,
    verify_strict: Optional[bool] = None,
    verify_audit_period_s: float = 30.0,
    fault_plan: Optional[FaultPlan] = None,
    store: Optional[Union[str, Path]] = None,
    store_frames: bool = True,
    shards: int = 1,
    shard_workers: Optional[int] = None,
    shard_window_s: float = 1.0,
) -> RunResult:
    """Run one scenario and measure it.

    For MESH the network first runs until the routing tables converge
    (``converge_first``), then traffic flows for ``duration_s``, then a
    ``drain_s`` tail lets in-flight packets land.  FLOODING/STAR have no
    routing state and skip the warm-up; ORACLE starts converged by
    construction.

    ``sample_period_s`` turns on the observability sampler: the run's
    health (coverage, frames, airtime, queue pressure, PDR, ...) is
    snapshotted every that many simulated seconds and returned on
    ``RunResult.sampler`` / ``RunResult.timeseries``.

    ``verify`` (MESH only) attaches an
    :class:`~repro.verify.invariants.InvariantChecker` to the network —
    every ``verify_audit_period_s`` simulated seconds the run's global
    protocol invariants are audited, with a final audit after the drain
    tail; the checker comes back on ``RunResult.checker``.
    ``verify_strict`` overrides the ``REPRO_STRICT_INVARIANTS``
    environment default.  ``fault_plan`` (MESH only) arms a
    deterministic :class:`~repro.verify.faults.FaultPlan` (crashes,
    blackouts, burst loss) before the scenario starts.

    ``store`` streams the run into a WAL-mode
    :class:`~repro.obs.store.EventStore` at that path: frames (unless
    ``store_frames=False``), route events, forwarding decisions,
    deliveries, invariant violations, and registry samples, queryable
    live by ``repro serve`` while the run executes.  Recording rides
    observer taps only, so the run's outcome is identical with the
    store on or off.  When ``sample_period_s`` is not given, a store
    run samples every 60 simulated seconds so dashboards get health
    trajectories.

    ``shards`` > 1 (MESH only) runs the scenario on the sharded
    multi-process runner (:func:`repro.sim.shard.run_sharded`): the
    placement is partitioned into spatial strips, each strip simulates
    in its own worker process (``shard_workers`` caps the process
    count), and boundary-crossing frames are exchanged at conservative
    ``shard_window_s`` barriers.  The merged result comes back on
    ``RunResult.sharded``; ``network`` is None on a sharded run.
    Samplers, stores and fault plans need the live in-process network
    and are rejected with ``shards > 1``.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if (verify or fault_plan is not None) and protocol is not Protocol.MESH:
        raise ValueError("verify/fault_plan require Protocol.MESH")
    if shards != 1 or shard_workers is not None:
        return _run_sharded_protocol(
            protocol, positions, traffic,
            duration_s=duration_s, seed=seed, config=config, pathloss=pathloss,
            converge_first=converge_first, converge_timeout_s=converge_timeout_s,
            drain_s=drain_s, sample_period_s=sample_period_s, verify=verify,
            verify_audit_period_s=verify_audit_period_s, fault_plan=fault_plan,
            store=store, shards=shards, shard_workers=shard_workers,
            shard_window_s=shard_window_s,
        )
    if store is not None and sample_period_s is None:
        sample_period_s = 60.0
    recorder = FlowRecorder()
    event_store: Optional[EventStore] = None
    store_recorder: Optional[StoreRecorder] = None

    def _attach_store(net, sampler, checker=None) -> None:
        nonlocal event_store, store_recorder
        if store is None:
            return
        event_store = EventStore(store, mode="w")
        event_store.set_meta("protocol", protocol.value)
        event_store.set_meta("seed", seed)
        event_store.set_meta("n_nodes", len(positions))
        event_store.set_meta("duration_s", duration_s)
        store_recorder = StoreRecorder(
            event_store, net, sampler=sampler, checker=checker, frames=store_frames
        ).attach()

    def _attach_sampler(net) -> Optional[TimeSeriesSampler]:
        if sample_period_s is None:
            return None
        registry = instrument_network(MetricsRegistry(), net)
        instrument_flows(registry, recorder)
        sampler = TimeSeriesSampler(net.sim, registry, period_s=sample_period_s)
        sampler.sample_now()  # t=0 baseline point
        return sampler

    checker: Optional[InvariantChecker] = None
    if protocol in (Protocol.MESH, Protocol.ORACLE):
        if protocol is Protocol.MESH:
            net = MeshNetwork.from_positions(
                positions, config=config, seed=seed, pathloss=pathloss, trace_enabled=False
            )
        else:
            net = build_oracle_network(positions, config=config, seed=seed, pathloss=pathloss)
        sampler = _attach_sampler(net)
        if verify:
            checker = InvariantChecker(
                net, audit_period_s=verify_audit_period_s, strict=verify_strict
            ).attach()
        if fault_plan is not None:
            FaultInjector(net, fault_plan, seed=seed).arm()
        _attach_store(net, sampler, checker)
        convergence = None
        if protocol is Protocol.MESH and converge_first:
            convergence = net.run_until_converged(timeout_s=converge_timeout_s)
            if store_recorder is not None and convergence is not None:
                store_recorder.mark("converged", convergence_s=convergence)
        senders = _attach_mesh_traffic(net, traffic, recorder, seed)
        net.run(for_s=duration_s)
        for sender in senders:
            sender.stop()
        net.run(for_s=drain_s)
        nodes = net.nodes
        sim_now = net.sim.now
    elif protocol is Protocol.FLOODING:
        net = FloodingNetwork(positions, seed=seed, params=params, pathloss=pathloss)
        sampler = _attach_sampler(net)
        _attach_store(net, sampler)
        convergence = 0.0
        senders = _attach_flood_traffic(net, traffic, recorder, seed)
        net.run(for_s=duration_s)
        for sender in senders:
            sender.stop()
        net.run(for_s=drain_s)
        nodes = net.nodes
        sim_now = net.sim.now
    elif protocol is Protocol.AODV:
        net = AodvNetwork(positions, seed=seed, params=params, pathloss=pathloss)
        sampler = _attach_sampler(net)
        _attach_store(net, sampler)
        convergence = 0.0  # reactive: no proactive convergence phase
        senders = _attach_flood_traffic(net, traffic, recorder, seed)  # same send() shape
        net.run(for_s=duration_s)
        for sender in senders:
            sender.stop()
        net.run(for_s=drain_s)
        nodes = net.nodes
        sim_now = net.sim.now
    elif protocol is Protocol.STAR:
        # The gateway defaults to the most central placement position —
        # the best case for the star — and must not source any flow.
        gateway_index = (
            star_gateway_index if star_gateway_index is not None else _central_index(positions)
        )
        used = {spec.src_index for spec in traffic} | {spec.dst_index for spec in traffic}
        if gateway_index in used:
            free = [i for i in range(len(positions)) if i not in used]
            if not free:
                raise ValueError("no placement position left for the star gateway")
            gateway_index = min(
                free, key=lambda i: _centrality_cost(positions, i)
            )
        net = StarNetwork(
            positions, seed=seed, params=params, pathloss=pathloss, gateway_index=gateway_index
        )
        sampler = _attach_sampler(net)
        _attach_store(net, sampler)
        convergence = 0.0
        senders = _attach_star_traffic(net, traffic, recorder, seed)
        net.run(for_s=duration_s)
        for sender in senders:
            sender.stop()
        net.run(for_s=drain_s)
        nodes = [net.node(a) for a in net.addresses]
        sim_now = net.sim.now
    else:  # pragma: no cover
        raise ValueError(f"unknown protocol {protocol}")

    if sampler is not None:
        sampler.stop()
        sampler.sample_now()  # end-of-run point after the drain tail
    if checker is not None:
        checker.audit()  # final sweep over the drained end state
    if store_recorder is not None:
        store_recorder.detach()
    if event_store is not None:
        event_store.close()

    return RunResult(
        protocol=protocol,
        recorder=recorder,
        network=net,
        duration_s=duration_s,
        convergence_time_s=convergence,
        overhead=overhead_summary(nodes, recorder, now=sim_now),
        sampler=sampler,
        checker=checker,
        store_path=Path(store) if store is not None else None,
    )


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
def _run_sharded_protocol(
    protocol: Protocol,
    positions: Sequence[Position],
    traffic: Sequence[TrafficSpec],
    *,
    duration_s: float,
    seed: int,
    config: Optional[MesherConfig],
    pathloss: Optional[PathLossModel],
    converge_first: bool,
    converge_timeout_s: float,
    drain_s: float,
    sample_period_s: Optional[float],
    verify: bool,
    verify_audit_period_s: float,
    fault_plan: Optional[FaultPlan],
    store: Optional[Union[str, Path]],
    shards: int,
    shard_workers: Optional[int],
    shard_window_s: float,
) -> RunResult:
    """Dispatch a MESH scenario to :func:`repro.sim.shard.run_sharded`
    and repackage the merged outcome as an ordinary :class:`RunResult`."""
    if protocol is not Protocol.MESH:
        raise ValueError("sharded execution supports Protocol.MESH only")
    if sample_period_s is not None or store is not None or fault_plan is not None:
        raise ValueError(
            "samplers, event stores and fault plans need the live "
            "in-process network; they are not supported with shards > 1"
        )
    # Imported here, not at module top: repro.sim.shard builds networks
    # and senders itself, and the eager import would be cyclic.
    from repro.sim.shard import run_sharded

    result = run_sharded(
        positions,
        shards=shards,
        config=config,
        seed=seed,
        workers=shard_workers,
        window_s=shard_window_s,
        converge=converge_first,
        converge_timeout_s=converge_timeout_s,
        duration_s=duration_s,
        drain_s=drain_s,
        traffic=list(traffic),
        verify=verify,
        verify_audit_period_s=verify_audit_period_s,
        pathloss=pathloss,
    )
    delivered_bytes = result.recorder.delivered_bytes()
    overhead = OverheadSummary(
        frames_sent=result.frames,
        bytes_sent=result.bytes,
        airtime_s=result.airtime_s,
        airtime_per_delivered_byte_ms=(
            result.airtime_s * 1000 / delivered_bytes if delivered_bytes else float("inf")
        ),
        duty_cycle_peak=0.0,  # per-node duty windows stay in the workers
    )
    return RunResult(
        protocol=protocol,
        recorder=result.recorder,
        network=None,
        duration_s=duration_s,
        convergence_time_s=result.convergence_s,
        overhead=overhead,
        checker=result.checker,
        sharded=result,
    )


# ----------------------------------------------------------------------
# Placement helpers
# ----------------------------------------------------------------------
def _centrality_cost(positions: Sequence[Position], index: int) -> float:
    """Sum of distances from one position to all others (lower = central)."""
    x, y = positions[index]
    return sum(((x - px) ** 2 + (y - py) ** 2) ** 0.5 for px, py in positions)


def _central_index(positions: Sequence[Position]) -> int:
    """Index of the most central placement position."""
    return min(range(len(positions)), key=lambda i: _centrality_cost(positions, i))


# ----------------------------------------------------------------------
# Traffic attachment per stack
# ----------------------------------------------------------------------
def _make_sender(sim, src_addr, dst_addr, send_fn, spec: TrafficSpec, recorder, rng):
    if spec.poisson:
        return PoissonSender(
            sim,
            src_addr,
            dst_addr,
            send_fn,
            mean_interval_s=spec.period_s,
            rng=rng,
            payload_size=spec.payload_size,
            listener=recorder,
        )
    return PeriodicSender(
        sim,
        src_addr,
        dst_addr,
        send_fn,
        period_s=spec.period_s,
        rng=rng,
        payload_size=spec.payload_size,
        listener=recorder,
    )


def _attach_mesh_traffic(net: MeshNetwork, traffic, recorder, seed) -> List:
    rngs = RngRegistry(seed).fork("traffic")
    addresses = net.addresses
    for node in net.nodes:
        attach_recorder(recorder, node)
    senders = []
    for i, spec in enumerate(traffic):
        src = addresses[spec.src_index]
        dst = addresses[spec.dst_index]
        node = net.node(src)
        senders.append(
            _make_sender(
                net.sim, src, dst, node.send_datagram, spec, recorder, rngs.stream(f"flow{i}")
            )
        )
    return senders


def _attach_flood_traffic(net: FloodingNetwork, traffic, recorder, seed) -> List:
    rngs = RngRegistry(seed).fork("traffic")
    addresses = net.addresses
    for node in net.nodes:
        attach_recorder(recorder, node)
    senders = []
    for i, spec in enumerate(traffic):
        src = addresses[spec.src_index]
        dst = addresses[spec.dst_index]
        node = net.node(src)
        senders.append(
            _make_sender(net.sim, src, dst, node.send, spec, recorder, rngs.stream(f"flow{i}"))
        )
    return senders


def _attach_star_traffic(net: StarNetwork, traffic, recorder, seed) -> List:
    rngs = RngRegistry(seed).fork("traffic")
    addresses = net.addresses
    for address in addresses:
        attach_recorder(recorder, net.node(address))
    senders = []
    for i, spec in enumerate(traffic):
        src = addresses[spec.src_index]
        dst = addresses[spec.dst_index]
        node = net.node(src)
        if not hasattr(node, "send"):
            raise ValueError("star traffic must originate at end nodes, not the gateway")
        senders.append(
            _make_sender(net.sim, src, dst, node.send, spec, recorder, rngs.stream(f"flow{i}"))
        )
    return senders


def all_pairs_traffic(
    n_nodes: int, *, period_s: float = 120.0, payload_size: int = 24, limit: Optional[int] = None
) -> List[TrafficSpec]:
    """Every ordered pair as a flow (optionally capped), for load tests."""
    specs = []
    for i in range(n_nodes):
        for j in range(n_nodes):
            if i != j:
                specs.append(
                    TrafficSpec(src_index=i, dst_index=j, period_s=period_s, payload_size=payload_size)
                )
    return specs[:limit] if limit is not None else specs


def endpoint_traffic(
    n_nodes: int, *, period_s: float = 60.0, payload_size: int = 24, bidirectional: bool = True
) -> List[TrafficSpec]:
    """The demo's flow: first node <-> last node across the mesh."""
    specs = [
        TrafficSpec(src_index=0, dst_index=n_nodes - 1, period_s=period_s, payload_size=payload_size)
    ]
    if bidirectional and n_nodes > 1:
        specs.append(
            TrafficSpec(
                src_index=n_nodes - 1, dst_index=0, period_s=period_s, payload_size=payload_size
            )
        )
    return specs
