"""LoRaWAN-style star baseline.

The architecture the paper contrasts against: end nodes speak only to a
central gateway, which relays unicasts to their destination in a single
downlink hop.  There is no forwarding by end nodes, so any node outside
the gateway's radio range is simply unreachable — the failure mode that
motivates the mesh.

The star reuses the mesh wire format (DATA packets with ``via`` set to
the gateway / the destination) so airtime comparisons are apples to
apples.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Optional, Sequence

from repro.medium.channel import Medium
from repro.net import serialization
from repro.net.addresses import BROADCAST_ADDRESS, validate_address
from repro.net.mesher import AppMessage
from repro.net.packets import DataPacket
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel, Position
from repro.phy.regions import DutyCycleAccountant, EU868, Region
from repro.radio.driver import Radio
from repro.radio.frames import ReceivedFrame
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

logger = logging.getLogger(__name__)


class _StarEndpoint:
    """Shared transmit machinery of gateway and end nodes."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        address: int,
        position: Position,
        params: LoRaParams,
        rng,
        *,
        region: Region = EU868,
        backoff_max_s: float = 0.5,
    ) -> None:
        validate_address(address)
        self.sim = sim
        self.address = address
        self._params = params
        self._rng = rng
        self.backoff_max_s = backoff_max_s
        self.radio = Radio(sim, medium, address, position, params)
        self.radio.on_receive = self._on_frame
        self.radio.on_tx_done = lambda: self._kick()
        self.duty = DutyCycleAccountant(region)
        self._outbox: List[bytes] = []
        self._pump_armed = False
        self.inbox: List[AppMessage] = []
        self.on_message: Optional[Callable[[AppMessage], None]] = None
        self.delivered = 0

    def start(self) -> None:
        """Enter continuous receive."""
        self.radio.start_receive()

    def receive(self) -> Optional[AppMessage]:
        """Pop the next delivered message, or None."""
        return self.inbox.pop(0) if self.inbox else None

    # ------------------------------------------------------------------
    def _enqueue_frame(self, frame: bytes) -> None:
        self._outbox.append(frame)
        self._kick()

    def _kick(self) -> None:
        if self._pump_armed or self.radio.transmitting or not self._outbox:
            return
        self._pump_armed = True
        self.sim.schedule(
            self._rng.uniform(0, self.backoff_max_s),
            self._pump,
            label=f"star{self.address} pump",
        )

    def _pump(self) -> None:
        self._pump_armed = False
        if self.radio.transmitting or not self._outbox:
            return
        frame = self._outbox[0]
        airtime = time_on_air(len(frame), self._params)
        now = self.sim.now
        if not self.duty.can_transmit(now, airtime):
            self._pump_armed = True
            self.sim.schedule(
                self.duty.next_allowed_time(now, airtime) - now,
                self._pump,
                label=f"star{self.address} duty",
            )
            return
        self._outbox.pop(0)
        self.duty.record(now, airtime)
        self.radio.transmit(frame)

    def _deliver(self, packet: DataPacket) -> None:
        self.delivered += 1
        message = AppMessage(
            src=packet.src, payload=packet.payload, received_at=self.sim.now, reliable=False
        )
        self.inbox.append(message)
        if self.on_message is not None:
            self.on_message(message)

    def _on_frame(self, rx: ReceivedFrame) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class StarGateway(_StarEndpoint):
    """The central gateway: receives uplinks, relays unicasts downlink."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.uplinks_received = 0
        self.downlinks_relayed = 0

    def _on_frame(self, rx: ReceivedFrame) -> None:
        if not rx.crc_ok:
            return
        try:
            packet = serialization.decode(rx.payload)
        except serialization.DecodeError:
            return
        if not isinstance(packet, DataPacket) or packet.via != self.address:
            return
        self.uplinks_received += 1
        if packet.dst in (self.address, BROADCAST_ADDRESS):
            self._deliver(packet)
            return
        # Relay: one downlink hop straight to the destination.
        downlink = DataPacket(
            dst=packet.dst, src=packet.src, via=packet.dst, payload=packet.payload
        )
        self.downlinks_relayed += 1
        self._enqueue_frame(serialization.encode(downlink))


class StarEndNode(_StarEndpoint):
    """An end node: transmits uplinks to the gateway, receives downlinks."""

    def __init__(self, *args, gateway_address: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.gateway_address = gateway_address
        self.originated = 0

    def send(self, dst: int, payload: bytes) -> bool:
        """Send to ``dst`` through the gateway (LoRaWAN has no node-to-node
        path, so even neighbour traffic takes two hops)."""
        packet = DataPacket(dst=dst, src=self.address, via=self.gateway_address, payload=payload)
        self.originated += 1
        self._enqueue_frame(serialization.encode(packet))
        return True

    def _on_frame(self, rx: ReceivedFrame) -> None:
        if not rx.crc_ok:
            return
        try:
            packet = serialization.decode(rx.payload)
        except serialization.DecodeError:
            return
        if not isinstance(packet, DataPacket):
            return
        if packet.via == self.address and packet.dst in (self.address, BROADCAST_ADDRESS):
            self._deliver(packet)


class StarNetwork:
    """A gateway plus end nodes (the first position is the gateway)."""

    def __init__(
        self,
        positions: Sequence[Position],
        *,
        seed: int = 0,
        params: Optional[LoRaParams] = None,
        pathloss: Optional[PathLossModel] = None,
        gateway_index: int = 0,
    ) -> None:
        if len(positions) < 2:
            raise ValueError("a star needs a gateway and at least one end node")
        if not 0 <= gateway_index < len(positions):
            raise ValueError("gateway_index out of range")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        params = params or LoRaParams()
        model = pathloss if pathloss is not None else LogDistancePathLoss()
        self.medium = Medium(self.sim, LinkBudget(model))

        self._nodes: Dict[int, _StarEndpoint] = {}
        gateway_address = 0x0001 + gateway_index
        for i, position in enumerate(positions):
            address = 0x0001 + i
            if i == gateway_index:
                node: _StarEndpoint = StarGateway(
                    self.sim,
                    self.medium,
                    address,
                    position,
                    params,
                    self.rngs.stream(f"star.{address}"),
                )
            else:
                node = StarEndNode(
                    self.sim,
                    self.medium,
                    address,
                    position,
                    params,
                    self.rngs.stream(f"star.{address}"),
                    gateway_address=gateway_address,
                )
            node.start()
            self._nodes[address] = node
        self.gateway_address = gateway_address

    @property
    def gateway(self) -> StarGateway:
        """The gateway node."""
        node = self._nodes[self.gateway_address]
        assert isinstance(node, StarGateway)
        return node

    @property
    def addresses(self) -> List[int]:
        """All addresses in insertion order (gateway included)."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[_StarEndpoint]:
        """All nodes (gateway + end nodes) in insertion order."""
        return list(self._nodes.values())

    def node(self, address: int) -> _StarEndpoint:
        """Node by address."""
        return self._nodes[address]

    def end_nodes(self) -> List[StarEndNode]:
        """All end nodes."""
        return [n for n in self._nodes.values() if isinstance(n, StarEndNode)]

    def run(self, *, for_s: float) -> float:
        """Advance the simulation."""
        return self.sim.run(until=self.sim.now + for_s)

    def total_frames_sent(self) -> int:
        """Frames on the air across the network."""
        return sum(n.radio.frames_sent for n in self._nodes.values())

    def total_airtime_s(self) -> float:
        """Cumulative transmit airtime (seconds)."""
        return sum(n.radio.tx_airtime_s for n in self._nodes.values())
