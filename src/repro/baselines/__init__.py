"""Comparison protocols running on the same substrate as LoRaMesher.

The paper motivates mesh routing against the two obvious alternatives:

* :mod:`repro.baselines.flooding` — controlled flooding: every node
  rebroadcasts every packet once (dedup + TTL).  Delivers without any
  routing state, at a steep airtime and collision cost.
* :mod:`repro.baselines.star` — the LoRaWAN-style star: end nodes talk
  only to a gateway, which relays.  No multi-hop: out-of-range nodes are
  simply unreachable.
* :mod:`repro.baselines.idealrouter` — an oracle upper bound: LoRaMesher
  nodes whose routing tables are pre-filled with global shortest paths
  and whose hello service is disabled (zero control overhead, perfect
  routes),
* :mod:`repro.baselines.aodv` — reactive (on-demand) routing: RREQ
  floods discover routes only when traffic needs them, the proactive
  protocol's opposite corner of the design space.

All of them use the identical kernel/PHY/medium/radio stack, so
benchmark differences isolate the protocol, not the substrate.
"""

from repro.baselines.aodv import AodvNetwork, AodvNode
from repro.baselines.flooding import FloodingNetwork, FloodingNode
from repro.baselines.star import StarNetwork
from repro.baselines.idealrouter import OracleNode, build_oracle_network

__all__ = [
    "FloodingNode",
    "FloodingNetwork",
    "StarNetwork",
    "OracleNode",
    "build_oracle_network",
    "AodvNode",
    "AodvNetwork",
]
