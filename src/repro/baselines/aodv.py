"""AODV-style reactive routing baseline.

LoRaMesher routes *proactively*: every node pays hello airtime all the
time so routes exist before traffic does.  The classic alternative is
*reactive* (on-demand) routing — discover a route only when a packet
needs one.  This module implements a deliberately compact AODV-lite on
the identical substrate so E10 can measure the actual trade-off:

* **RREQ** — when a node must send without a route it floods a route
  request (dedup + TTL, like the flooding baseline),
* **RREP** — the target answers with a route reply that travels back
  along the reverse path recorded by the RREQ flood; every node on the
  way learns the forward route,
* **DATA** — forwarded hop-by-hop through the discovered routes, which
  expire after ``route_lifetime_s`` of disuse.

Simplifications vs RFC 3561 (documented, deliberate): no destination
sequence numbers (only the target answers a RREQ, so freshness races
cannot arise), no RERR/local-repair (broken routes age out and the next
send re-discovers), no gratuitous RREPs.  Each frame carries a
``sender`` field updated per hop because the radio layer, like real
LoRa, does not expose the transmitter's identity.

Wire format (own framing, distinct from the mesh)::

    common  : dst:u16 src:u16 type:u8 len:u8 sender:u16
    RREQ    : + origin:u16 rreq_id:u16 target:u16 hops:u8 ttl:u8
    RREP    : + origin:u16 target:u16 hops:u8
    DATA    : + payload...
"""

from __future__ import annotations

import logging
import random
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.medium.channel import Medium
from repro.net.addresses import BROADCAST_ADDRESS, validate_address
from repro.net.mesher import AppMessage
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel, Position
from repro.phy.regions import DutyCycleAccountant, EU868, Region
from repro.radio.driver import Radio
from repro.radio.frames import ReceivedFrame
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

logger = logging.getLogger(__name__)

_HEADER = struct.Struct("<HHBBH")  # dst, src, type, len(after header), sender
_RREQ = struct.Struct("<HHHBB")  # origin, rreq_id, target, hops, ttl
_RREP = struct.Struct("<HHB")  # origin, target, hops

TYPE_RREQ = 0x91
TYPE_RREP = 0x92
TYPE_DATA = 0x93

DEFAULT_RREQ_TTL = 8


@dataclass(frozen=True)
class AodvFrame:
    """Decoded AODV frame (body depends on type)."""

    dst: int
    src: int
    type: int
    sender: int
    body: bytes


def encode_frame(dst: int, src: int, type_: int, sender: int, body: bytes) -> bytes:
    """Serialize an AODV frame."""
    if len(body) > 0xFF:
        raise ValueError("AODV body too large")
    return _HEADER.pack(dst, src, type_, len(body), sender) + body


def decode_frame(buffer: bytes) -> AodvFrame:
    """Parse an AODV frame; raises ValueError when malformed."""
    if len(buffer) < _HEADER.size:
        raise ValueError("short AODV frame")
    dst, src, type_, length, sender = _HEADER.unpack_from(buffer)
    body = buffer[_HEADER.size :]
    if len(body) != length or type_ not in (TYPE_RREQ, TYPE_RREP, TYPE_DATA):
        raise ValueError("malformed AODV frame")
    return AodvFrame(dst=dst, src=src, type=type_, sender=sender, body=body)


@dataclass
class _Route:
    next_hop: int
    hops: int
    expires_at: float


@dataclass
class AodvStats:
    """Per-node protocol counters."""

    rreqs_originated: int = 0
    rreqs_relayed: int = 0
    rreps_sent: int = 0
    rreps_forwarded: int = 0
    data_sent: int = 0
    data_forwarded: int = 0
    data_delivered: int = 0
    discovery_failures: int = 0
    buffered_drops: int = 0


class AodvNode:
    """One node of the reactive-routing baseline."""

    #: How long a discovered route stays valid without being refreshed.
    ROUTE_LIFETIME_S = 300.0
    #: RREQ retry schedule: attempts and wait per attempt.
    MAX_DISCOVERY_ATTEMPTS = 3
    DISCOVERY_WAIT_S = 15.0
    #: Per-destination buffer while discovering.
    BUFFER_CAPACITY = 8
    #: (origin, rreq_id) dedup cache size.
    DEDUP_CAPACITY = 256

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        address: int,
        position: Position,
        params: LoRaParams,
        rng: random.Random,
        *,
        region: Region = EU868,
        backoff_max_s: float = 0.4,
    ) -> None:
        validate_address(address)
        self.sim = sim
        self.address = address
        self._params = params
        self._rng = rng
        self.backoff_max_s = backoff_max_s
        self.radio = Radio(sim, medium, address, position, params)
        self.radio.on_receive = self._on_frame
        self.radio.on_tx_done = lambda: self._kick()
        self.duty = DutyCycleAccountant(region)
        self.routes: Dict[int, _Route] = {}
        self._rreq_id = 0
        self._seen_rreqs: Set[Tuple[int, int]] = set()
        self._seen_order: List[Tuple[int, int]] = []
        self._pending: Dict[int, List[bytes]] = {}  # dst -> buffered payloads
        self._discovering: Dict[int, int] = {}  # dst -> attempts made
        self._outbox: List[bytes] = []
        self._pump_armed = False
        self._cad_attempts = 0
        self.inbox: List[AppMessage] = []
        self.on_message: Optional[Callable[[AppMessage], None]] = None
        self.stats = AodvStats()

    def start(self) -> None:
        """Enter continuous receive."""
        self.radio.start_receive()

    # ==================================================================
    # Application API
    # ==================================================================
    def send(self, dst: int, payload: bytes) -> bool:
        """Send a datagram, discovering a route first if needed."""
        validate_address(dst)
        self.stats.data_sent += 1
        route = self._fresh_route(dst)
        if route is not None:
            self._transmit_data(dst, self.address, route.next_hop, payload)
            return True
        # Buffer and (maybe) start discovery.
        queue = self._pending.setdefault(dst, [])
        if len(queue) >= self.BUFFER_CAPACITY:
            self.stats.buffered_drops += 1
            return False
        queue.append(payload)
        if dst not in self._discovering:
            self._discovering[dst] = 0
            self._attempt_discovery(dst)
        return True

    def receive(self) -> Optional[AppMessage]:
        """Pop the next delivered message, or None."""
        return self.inbox.pop(0) if self.inbox else None

    def has_route(self, dst: int) -> bool:
        """Whether a fresh route to ``dst`` exists right now."""
        return self._fresh_route(dst) is not None

    # ==================================================================
    # Discovery
    # ==================================================================
    def _attempt_discovery(self, dst: int) -> None:
        if self._fresh_route(dst) is not None:
            self._flush_pending(dst)
            return
        attempts = self._discovering.get(dst, 0)
        if attempts >= self.MAX_DISCOVERY_ATTEMPTS:
            self.stats.discovery_failures += 1
            dropped = self._pending.pop(dst, [])
            self.stats.buffered_drops += len(dropped)
            self._discovering.pop(dst, None)
            return
        self._discovering[dst] = attempts + 1
        self._rreq_id = (self._rreq_id + 1) % 0x10000
        self._remember_rreq((self.address, self._rreq_id))
        self.stats.rreqs_originated += 1
        body = _RREQ.pack(self.address, self._rreq_id, dst, 0, DEFAULT_RREQ_TTL)
        self._enqueue(
            encode_frame(BROADCAST_ADDRESS, self.address, TYPE_RREQ, self.address, body)
        )
        self.sim.schedule(
            self.DISCOVERY_WAIT_S,
            lambda: self._attempt_discovery(dst),
            label=f"aodv{self.address:04x} rediscover",
        )

    # ==================================================================
    # RX path
    # ==================================================================
    def _on_frame(self, rx: ReceivedFrame) -> None:
        if not rx.crc_ok:
            return
        try:
            frame = decode_frame(rx.payload)
        except ValueError:
            return
        if frame.type == TYPE_RREQ:
            self._handle_rreq(frame)
        elif frame.type == TYPE_RREP:
            self._handle_rrep(frame)
        else:
            self._handle_data(frame)

    def _handle_rreq(self, frame: AodvFrame) -> None:
        try:
            origin, rreq_id, target, hops, ttl = _RREQ.unpack(frame.body)
        except struct.error:
            return
        key = (origin, rreq_id)
        if key in self._seen_rreqs or origin == self.address:
            return
        self._remember_rreq(key)
        # Reverse route towards the origin, via whoever transmitted this copy.
        self._learn_route(origin, frame.sender, hops + 1)
        if target == self.address:
            # We are the destination: answer along the reverse path.
            self.stats.rreps_sent += 1
            next_hop = self._fresh_route(origin).next_hop  # just learned
            body = struct.pack("<H", next_hop) + _RREP.pack(origin, self.address, 0)
            self._enqueue(encode_frame(origin, self.address, TYPE_RREP, self.address, body))
            return
        if ttl <= 1:
            return
        self.stats.rreqs_relayed += 1
        body = _RREQ.pack(origin, rreq_id, target, hops + 1, ttl - 1)
        self._enqueue(
            encode_frame(BROADCAST_ADDRESS, origin, TYPE_RREQ, self.address, body)
        )

    def _handle_rrep(self, frame: AodvFrame) -> None:
        hop, rest = self._split_hop(frame.body)
        if hop is None:
            return
        try:
            origin, target, hops = _RREP.unpack(rest)
        except struct.error:
            return
        # Any overhearer may learn the forward route to the target via
        # the RREP's transmitter (promiscuous learning, as in AODV).
        self._learn_route(target, frame.sender, hops + 1)
        if hop != self.address:
            return  # not our hop to process
        if origin == self.address:
            # Discovery complete: release buffered traffic.
            self._discovering.pop(target, None)
            self._flush_pending(target)
            return
        route = self._fresh_route(origin)
        if route is None:
            return  # reverse route expired; the origin will retry
        self.stats.rreps_forwarded += 1
        body = struct.pack("<H", route.next_hop) + _RREP.pack(origin, target, hops + 1)
        self._enqueue(encode_frame(origin, frame.src, TYPE_RREP, self.address, body))

    def _handle_data(self, frame: AodvFrame) -> None:
        hop, payload = self._split_hop(frame.body)
        if hop is None or hop != self.address:
            return  # someone else's hop (overheard)
        if frame.dst == self.address:
            self.stats.data_delivered += 1
            message = AppMessage(
                src=frame.src, payload=payload, received_at=self.sim.now, reliable=False
            )
            self.inbox.append(message)
            if self.on_message is not None:
                self.on_message(message)
            # Data arriving refreshes the reverse route it rode in on.
            self._learn_route(frame.src, frame.sender, 0, refresh_only=True)
            return
        route = self._fresh_route(frame.dst)
        if route is None:
            return  # route expired mid-path: the packet dies here
        self.stats.data_forwarded += 1
        self._transmit_data(frame.dst, frame.src, route.next_hop, payload, refresh=True)

    # Per-hop addressing: real AODV unicasts each hop at the MAC layer;
    # our radio (like LoRa) has no MAC-level unicast, so every per-hop
    # frame carries its intended next hop as a 2-byte body prefix.
    def _transmit_data(
        self, dst: int, src: int, next_hop: int, payload: bytes, *, refresh: bool = False
    ) -> None:
        body = struct.pack("<H", next_hop) + payload
        self._enqueue(encode_frame(dst, src, TYPE_DATA, self.address, body))
        if refresh:
            self._touch_route(dst)

    @staticmethod
    def _split_hop(body: bytes):
        if len(body) < 2:
            return None, b""
        (hop,) = struct.unpack_from("<H", body)
        return hop, body[2:]

    # ==================================================================
    # Routes
    # ==================================================================
    def _learn_route(self, dst: int, next_hop: int, hops: int, *, refresh_only: bool = False) -> None:
        if dst in (self.address, BROADCAST_ADDRESS):
            return
        now = self.sim.now
        current = self.routes.get(dst)
        if refresh_only:
            if current is not None:
                current.expires_at = now + self.ROUTE_LIFETIME_S
            return
        if current is None or hops <= current.hops or current.expires_at <= now:
            self.routes[dst] = _Route(
                next_hop=next_hop, hops=hops, expires_at=now + self.ROUTE_LIFETIME_S
            )
        else:
            current.expires_at = max(current.expires_at, now + self.ROUTE_LIFETIME_S / 2)

    def _fresh_route(self, dst: int) -> Optional[_Route]:
        route = self.routes.get(dst)
        if route is None or route.expires_at <= self.sim.now:
            self.routes.pop(dst, None)
            return None
        return route

    def _touch_route(self, dst: int) -> None:
        route = self.routes.get(dst)
        if route is not None:
            route.expires_at = self.sim.now + self.ROUTE_LIFETIME_S

    def _flush_pending(self, dst: int) -> None:
        route = self._fresh_route(dst)
        if route is None:
            return
        for payload in self._pending.pop(dst, []):
            self._transmit_data(dst, self.address, route.next_hop, payload)

    def _remember_rreq(self, key: Tuple[int, int]) -> None:
        self._seen_rreqs.add(key)
        self._seen_order.append(key)
        if len(self._seen_order) > self.DEDUP_CAPACITY:
            self._seen_rreqs.discard(self._seen_order.pop(0))

    # ==================================================================
    # TX pump (same shape as the flooding baseline)
    # ==================================================================
    def _enqueue(self, frame: bytes) -> None:
        self._outbox.append(frame)
        self._kick()

    def _kick(self) -> None:
        if self._pump_armed or self.radio.transmitting or not self._outbox:
            return
        self._pump_armed = True
        self.sim.schedule(
            self._rng.uniform(0, self.backoff_max_s), self._pump,
            label=f"aodv{self.address:04x} pump",
        )

    def _pump(self) -> None:
        self._pump_armed = False
        if self.radio.transmitting or not self._outbox:
            return
        frame = self._outbox[0]
        airtime = time_on_air(len(frame), self._params)
        now = self.sim.now
        if not self.duty.can_transmit(now, airtime):
            self._pump_armed = True
            self.sim.schedule(
                self.duty.next_allowed_time(now, airtime) - now, self._pump,
                label=f"aodv{self.address:04x} duty",
            )
            return
        # Listen before talk: an RREQ flood plus its RREP all land within
        # one backoff window; without CAD the reply reliably collides.
        if self.radio.channel_activity() and self._cad_attempts < 8:
            self._cad_attempts += 1
            self._pump_armed = True
            self.sim.schedule(
                self._rng.uniform(0.02, self.backoff_max_s), self._pump,
                label=f"aodv{self.address:04x} cad",
            )
            return
        self._cad_attempts = 0
        self._outbox.pop(0)
        self.duty.record(now, airtime)
        self.radio.transmit(frame)


class AodvNetwork:
    """A deployment of AODV nodes (mirror of the other *Network builders)."""

    def __init__(
        self,
        positions: Sequence[Position],
        *,
        seed: int = 0,
        params: Optional[LoRaParams] = None,
        pathloss: Optional[PathLossModel] = None,
    ) -> None:
        if not positions:
            raise ValueError("a network needs at least one node position")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        params = params or LoRaParams()
        model = pathloss if pathloss is not None else LogDistancePathLoss()
        self.medium = Medium(self.sim, LinkBudget(model))
        self._nodes: Dict[int, AodvNode] = {}
        for i, position in enumerate(positions):
            address = 0x0001 + i
            node = AodvNode(
                self.sim, self.medium, address, position, params,
                self.rngs.stream(f"aodv.{address}"),
            )
            node.start()
            self._nodes[address] = node

    @property
    def addresses(self) -> List[int]:
        """Node addresses in insertion order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[AodvNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def node(self, address: int) -> AodvNode:
        """Node by address."""
        return self._nodes[address]

    def run(self, *, for_s: float) -> float:
        """Advance the simulation."""
        return self.sim.run(until=self.sim.now + for_s)

    def total_frames_sent(self) -> int:
        """Frames on the air across the network."""
        return sum(n.radio.frames_sent for n in self._nodes.values())

    def total_airtime_s(self) -> float:
        """Cumulative transmit airtime (seconds)."""
        return sum(n.radio.tx_airtime_s for n in self._nodes.values())

    def total_control_frames(self) -> int:
        """RREQ + RREP traffic across the network."""
        return sum(
            n.stats.rreqs_originated + n.stats.rreqs_relayed
            + n.stats.rreps_sent + n.stats.rreps_forwarded
            for n in self._nodes.values()
        )
