"""Controlled flooding over LoRa.

The zero-state alternative to routing: the source broadcasts, every node
that hears a new packet rebroadcasts it once (after a random backoff),
and a TTL bounds the blast radius.  Duplicate suppression uses a
(source, sequence) cache.

Wire format (distinct from the mesh format — a flood frame must carry a
sequence number and TTL)::

    dst:u16  src:u16  type:u8(=0x81)  len:u8  seq:u16  ttl:u8  payload...
"""

from __future__ import annotations

import logging
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.medium.channel import Medium
from repro.net.addresses import BROADCAST_ADDRESS, validate_address
from repro.net.mesher import AppMessage
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel, Position
from repro.phy.regions import DutyCycleAccountant, Region, EU868
from repro.radio.driver import Radio
from repro.radio.frames import ReceivedFrame
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

logger = logging.getLogger(__name__)

_FLOOD_HEADER = struct.Struct("<HHBBHB")  # dst, src, type, len, seq, ttl
FLOOD_TYPE = 0x81
MAX_FLOOD_PAYLOAD = 255 - _FLOOD_HEADER.size
DEFAULT_TTL = 8


@dataclass(frozen=True)
class FloodFrame:
    """Decoded flood frame."""

    dst: int
    src: int
    seq: int
    ttl: int
    payload: bytes


def encode_flood(frame: FloodFrame) -> bytes:
    """Serialize a flood frame."""
    if len(frame.payload) > MAX_FLOOD_PAYLOAD:
        raise ValueError(f"flood payload {len(frame.payload)} B exceeds {MAX_FLOOD_PAYLOAD} B")
    return (
        _FLOOD_HEADER.pack(
            frame.dst, frame.src, FLOOD_TYPE, len(frame.payload), frame.seq, frame.ttl
        )
        + frame.payload
    )


def decode_flood(buffer: bytes) -> FloodFrame:
    """Parse a flood frame; raises ValueError on malformed input."""
    if len(buffer) < _FLOOD_HEADER.size:
        raise ValueError("buffer shorter than flood header")
    dst, src, type_code, length, seq, ttl = _FLOOD_HEADER.unpack_from(buffer)
    if type_code != FLOOD_TYPE:
        raise ValueError(f"not a flood frame (type {type_code:#x})")
    payload = buffer[_FLOOD_HEADER.size :]
    if len(payload) != length:
        raise ValueError("flood length field mismatch")
    return FloodFrame(dst=dst, src=src, seq=seq, ttl=ttl, payload=payload)


class FloodingNode:
    """One node of the flooding baseline."""

    #: Size of the duplicate-suppression cache (FIFO eviction).
    DEDUP_CAPACITY = 512

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        address: int,
        position: Position,
        params: LoRaParams,
        rng,
        *,
        region: Region = EU868,
        ttl: int = DEFAULT_TTL,
        backoff_max_s: float = 0.5,
    ) -> None:
        validate_address(address)
        self.sim = sim
        self.address = address
        self.ttl = ttl
        self.backoff_max_s = backoff_max_s
        self._rng = rng
        self.radio = Radio(sim, medium, address, position, params)
        self.radio.on_receive = self._on_frame
        self.radio.on_tx_done = self._on_tx_done
        self.duty = DutyCycleAccountant(region)
        self._params = params
        self._seq = 0
        self._seen: Set[Tuple[int, int]] = set()
        self._seen_order: List[Tuple[int, int]] = []
        self._outbox: List[bytes] = []
        self._pump_armed = False
        self.inbox: List[AppMessage] = []
        self.on_message: Optional[Callable[[AppMessage], None]] = None

        # Counters
        self.originated = 0
        self.rebroadcasts = 0
        self.duplicates = 0
        self.delivered = 0

    def start(self) -> None:
        """Enter continuous receive."""
        self.radio.start_receive()

    # ------------------------------------------------------------------
    def send(self, dst: int, payload: bytes) -> bool:
        """Flood ``payload`` towards ``dst`` (or BROADCAST_ADDRESS)."""
        frame = FloodFrame(dst=dst, src=self.address, seq=self._seq, ttl=self.ttl, payload=payload)
        self._seq = (self._seq + 1) % 0x10000
        self._remember((frame.src, frame.seq))
        self.originated += 1
        self._enqueue(encode_flood(frame))
        return True

    def receive(self) -> Optional[AppMessage]:
        """Pop the next delivered message, or None."""
        return self.inbox.pop(0) if self.inbox else None

    # ------------------------------------------------------------------
    def _on_frame(self, rx: ReceivedFrame) -> None:
        if not rx.crc_ok:
            return
        try:
            frame = decode_flood(rx.payload)
        except ValueError:
            return
        key = (frame.src, frame.seq)
        if key in self._seen:
            self.duplicates += 1
            return
        self._remember(key)
        if frame.dst in (self.address, BROADCAST_ADDRESS):
            self.delivered += 1
            message = AppMessage(
                src=frame.src, payload=frame.payload, received_at=self.sim.now, reliable=False
            )
            self.inbox.append(message)
            if self.on_message is not None:
                self.on_message(message)
            if frame.dst == self.address:
                return  # unicast reached its target; do not keep flooding
        if frame.ttl > 1:
            relay = FloodFrame(
                dst=frame.dst, src=frame.src, seq=frame.seq, ttl=frame.ttl - 1, payload=frame.payload
            )
            self.rebroadcasts += 1
            self._enqueue(encode_flood(relay))

    # ------------------------------------------------------------------
    def _enqueue(self, payload: bytes) -> None:
        self._outbox.append(payload)
        self._kick()

    def _kick(self) -> None:
        if self._pump_armed or self.radio.transmitting or not self._outbox:
            return
        self._pump_armed = True
        self.sim.schedule(
            self._rng.uniform(0, self.backoff_max_s), self._pump, label=f"flood{self.address} pump"
        )

    def _pump(self) -> None:
        self._pump_armed = False
        if self.radio.transmitting or not self._outbox:
            return
        payload = self._outbox[0]
        airtime = time_on_air(len(payload), self._params)
        now = self.sim.now
        if not self.duty.can_transmit(now, airtime):
            self._pump_armed = True
            self.sim.schedule(
                self.duty.next_allowed_time(now, airtime) - now,
                self._pump,
                label=f"flood{self.address} duty",
            )
            return
        self._outbox.pop(0)
        self.duty.record(now, airtime)
        self.radio.transmit(payload)

    def _on_tx_done(self) -> None:
        self._kick()

    def _remember(self, key: Tuple[int, int]) -> None:
        self._seen.add(key)
        self._seen_order.append(key)
        if len(self._seen_order) > self.DEDUP_CAPACITY:
            oldest = self._seen_order.pop(0)
            self._seen.discard(oldest)


class FloodingNetwork:
    """A deployment of flooding nodes (mirror of MeshNetwork)."""

    def __init__(
        self,
        positions: Sequence[Position],
        *,
        seed: int = 0,
        params: Optional[LoRaParams] = None,
        pathloss: Optional[PathLossModel] = None,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        if not positions:
            raise ValueError("a network needs at least one node position")
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        params = params or LoRaParams()
        model = pathloss if pathloss is not None else LogDistancePathLoss()
        self.medium = Medium(self.sim, LinkBudget(model))
        self._nodes: Dict[int, FloodingNode] = {}
        for i, position in enumerate(positions):
            address = 0x0001 + i
            node = FloodingNode(
                self.sim,
                self.medium,
                address,
                position,
                params,
                self.rngs.stream(f"flood.{address}"),
                ttl=ttl,
            )
            node.start()
            self._nodes[address] = node

    @property
    def addresses(self) -> List[int]:
        """Node addresses in insertion order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[FloodingNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def node(self, address: int) -> FloodingNode:
        """Node by address."""
        return self._nodes[address]

    def run(self, *, for_s: float) -> float:
        """Advance the simulation."""
        return self.sim.run(until=self.sim.now + for_s)

    def total_frames_sent(self) -> int:
        """Frames on the air across the network."""
        return sum(n.radio.frames_sent for n in self._nodes.values())

    def total_airtime_s(self) -> float:
        """Cumulative transmit airtime (seconds)."""
        return sum(n.radio.tx_airtime_s for n in self._nodes.values())
