"""Oracle routing upper bound.

LoRaMesher nodes with perfect knowledge: routing tables are pre-filled
with global shortest paths computed from the true connectivity graph, and
the hello service never runs.  The oracle therefore pays zero control
overhead and never has a stale route — the ceiling any distributed
protocol on the same substrate can approach but not beat.
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.net.mesher import MesherNode
from repro.phy.pathloss import PathLossModel, Position
from repro.topology.graphs import connectivity_graph


class OracleNode(MesherNode):
    """A mesh node whose hello service is disabled (table is injected)."""

    def start(self) -> None:
        """Power up the radio but never beacon."""
        if self.started:
            return
        self._started = True
        if not self.radio.powered:
            self.radio.power_on()
        self.radio.start_receive()
        # Deliberately no self.hello.start(): routes come from the oracle.


class OracleNetwork(MeshNetwork):
    """MeshNetwork that builds OracleNode instances."""

    def add_node(self, address, position, *, config=None, name=""):
        node = OracleNode(
            self.sim,
            self.medium,
            address,
            position,
            config,
            rngs=self.rngs,
            trace=self.trace,
            name=name,
        )
        self._nodes[address] = node
        return node


def build_oracle_network(
    positions: Sequence[Position],
    *,
    config: Optional[MesherConfig] = None,
    seed: int = 0,
    pathloss: Optional[PathLossModel] = None,
) -> OracleNetwork:
    """An oracle-routed network over the given placement.

    Tables are filled from all-pairs shortest paths on the true
    connectivity graph; unreachable pairs are left without routes (the
    oracle cannot route across a partition either).
    """
    net = OracleNetwork.from_positions(  # type: ignore[assignment]
        positions, config=config, seed=seed, pathloss=pathloss, autostart=True
    )
    populate_oracle_tables(net, positions)
    return net


def populate_oracle_tables(net: MeshNetwork, positions: Sequence[Position]) -> None:
    """Overwrite every node's routing table with global shortest paths."""
    params = net.nodes[0].config.lora if net.nodes else None
    if params is None:
        return
    graph = connectivity_graph(positions, net.medium.link_budget, params)
    addresses = net.addresses
    paths = dict(nx.all_pairs_shortest_path(graph))
    now = net.sim.now
    for i, address in enumerate(addresses):
        node = net.node(address)
        # Effectively infinite lifetime: the oracle's routes never expire.
        node.table.route_timeout = float("inf")
        for j, other in enumerate(addresses):
            if i == j:
                continue
            path = paths.get(i, {}).get(j)
            if path is None or len(path) < 2:
                continue
            next_hop = addresses[path[1]]
            # Force the exact shortest-path next hop even if an
            # equal-metric alternative exists.  set_route works on both
            # table implementations — the columnar store hands out
            # materialized entry copies, so mutating get() results would
            # silently do nothing there.
            node.table.set_route(other, next_hop, len(path) - 1, 0, now)
