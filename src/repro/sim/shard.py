"""Sharded multi-process simulation with conservative time windows.

One mesh, many kernels: the placement is partitioned into spatial strips
(:class:`repro.medium.spatial.ShardPlan`, snapped to the medium's grid
cells), each strip runs the ordinary :class:`~repro.sim.kernel.Simulator`
over its own :class:`~repro.net.api.MeshNetwork`, and the strips advance
in lock-step windows of ``window_s`` simulated seconds.  At every window
barrier, transmissions whose audible disk crossed a strip boundary are
exchanged (over pipes when shards live in worker processes) and re-aired
into the neighbouring strips as *ghost* frames via
:meth:`~repro.medium.channel.Medium.inject_external`.

Windowed visibility semantics
-----------------------------
LoRa gives no usable conservative lookahead for carrier sensing: a frame
is audible the instant ``transmit`` is called, and CSMA backoff can draw
zero slots, so a cross-strip frame *cannot* influence a peer strip's CAD
within the window it was sent — only from the next barrier on.  The
sharded runner therefore defines its semantics explicitly: cross-shard
transmissions become visible exactly one window late — each ghost is
re-aired with its original payload/params at ``start + window``, so the
batch keeps its in-window spacing instead of piling onto the barrier
instant and colliding with itself.  What stays bit-exact, and is
asserted by tests and CI:

* ``shards=1`` reproduces the serial run exactly (same kernel calls,
  same convergence checks, identical result fingerprint);
* for a fixed ``(shards, window_s)``, the result fingerprint is
  identical for **any** worker count — partitioning decides semantics,
  processes only decide wall-clock;
* placements whose strips are RF-isolated (no audible disk crosses a
  cut) reproduce the serial per-node fingerprints exactly, because no
  ghost is ever exchanged.

For connected meshes with ``shards > 1``, window-delayed visibility is a
(deterministic) model change whose drift is measured and documented in
``docs/performance.md`` — hello periods are O(minutes) while windows are
O(seconds), so routing-level behaviour is essentially unchanged.

Determinism rides the existing seed scheme: per-node RNG streams are
named by address (``mesher.0x0001``), so a shard-subset network draws
bit-identical streams to the whole-mesh network, and ghost batches are
injected in sorted ``(start, sender_id)`` order so exchange order never
depends on worker scheduling.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.medium.spatial import ShardPlan, plan_strips
from repro.metrics.collect import FlowRecorder, attach_recorder
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy import batch as _batch
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import LogDistancePathLoss, PathLossModel, Position
from repro.sim.rng import RngRegistry
from repro.workload.traffic import PeriodicSender, PoissonSender

__all__ = [
    "BoundaryFrame",
    "ShardStats",
    "ShardedInvariantReport",
    "ShardedRunResult",
    "make_plan",
    "network_fingerprint",
    "run_sharded",
]


# ----------------------------------------------------------------------
# Wire records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundaryFrame:
    """One boundary-crossing transmission, as exchanged between shards.

    ``targets`` names every strip (other than the origin) whose
    x-interval intersects the frame's audible disk; the coordinator
    fans the frame out to exactly those strips.
    """

    start: float
    sender_id: int
    position: Position
    params: LoRaParams
    payload: bytes
    airtime: float
    origin_shard: int
    targets: Tuple[int, ...]


@dataclass
class ShardStats:
    """Per-shard load/traffic accounting for one sharded run."""

    shard: int
    nodes: int
    windows: int = 0
    events: int = 0
    frames_sent: int = 0
    bytes_sent: int = 0
    airtime_s: float = 0.0
    exports_sent: int = 0
    ghosts_received: int = 0
    #: Wall-clock seconds spent executing this shard's windows.
    busy_s: float = 0.0
    #: Wall-clock seconds the owning worker spent blocked at barriers
    #: (zero when shards run in-process).
    barrier_wait_s: float = 0.0


class ShardedInvariantReport:
    """Cross-shard aggregation of per-shard invariant checkers.

    Mirrors the result surface of
    :class:`repro.verify.invariants.InvariantChecker` (``violations``,
    ``violation_counts``, ``summary``, ``assert_clean``) so callers that
    consume ``RunResult.checker`` work unchanged on sharded runs.
    """

    def __init__(self) -> None:
        self.audits_run = 0
        self.violations: List[str] = []
        self._counts: Dict[str, int] = {}
        self.observations: Dict[str, int] = {}

    def absorb(self, summary: Dict[str, object]) -> None:
        """Fold one shard checker's ``summary()`` dict into the report."""
        self.audits_run += int(summary.get("audits", 0))
        for name, count in summary.get("violations", {}).items():  # type: ignore[union-attr]
            self._counts[name] = self._counts.get(name, 0) + int(count)
        self.violations.extend(summary.get("violation_details", ()))  # type: ignore[arg-type]
        for name, count in summary.get("observations", {}).items():  # type: ignore[union-attr]
            self.observations[name] = self.observations.get(name, 0) + int(count)

    def violation_counts(self) -> Dict[str, int]:
        """Violations per invariant name, summed over every shard."""
        return dict(self._counts)

    def summary(self) -> Dict[str, object]:
        """A JSON-friendly aggregate report."""
        return {
            "audits": self.audits_run,
            "violations": self.violation_counts(),
            "violation_details": list(self.violations),
            "observations": dict(sorted(self.observations.items())),
        }

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` if any shard recorded a violation."""
        if self.violations:
            raise AssertionError(self.violations[0])


# ----------------------------------------------------------------------
# Result fingerprints
# ----------------------------------------------------------------------
def table_digest(table) -> str:
    """SHA-256 over the sorted structural rows of one routing table.

    Rows are ``(destination, via, metric, role)`` in address order —
    the fields the protocol's forwarding behaviour depends on.  Refresh
    timestamps are excluded deliberately: they carry float formatting
    noise without adding routing information.
    """
    h = hashlib.sha256()
    for entry in table:
        h.update(f"{entry.address}:{entry.via}:{entry.metric}:{entry.role};".encode())
    return h.hexdigest()


def _combine_fingerprint(frames: int, bytes_sent: int, tables: Dict[int, str]) -> str:
    h = hashlib.sha256()
    h.update(f"frames={frames};bytes={bytes_sent};".encode())
    for address in sorted(tables):
        h.update(f"{address}={tables[address]};".encode())
    return h.hexdigest()


def network_fingerprint(net: MeshNetwork, convergence_s: Optional[float] = None) -> Dict:
    """The result fingerprint of a (serial) network — the same structure
    :func:`run_sharded` reports, so serial and sharded runs compare with
    plain ``==``."""
    tables = {node.address: table_digest(node.table) for node in net.nodes}
    frames = net.total_frames_sent()
    bytes_sent = net.total_bytes_sent()
    return {
        "frames": frames,
        "bytes": bytes_sent,
        "tables": tables,
        "digest": _combine_fingerprint(frames, bytes_sent, tables),
        "convergence_s": convergence_s,
    }


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
def make_plan(
    positions: Sequence[Position],
    shards: int,
    *,
    config: Optional[MesherConfig] = None,
    pathloss: Optional[PathLossModel] = None,
) -> ShardPlan:
    """A strip partition sized to the configuration's radio range.

    The strip cell size is the conservative maximum communication range
    of the configured modulation under the path-loss model — the same
    radius the medium's spatial grid uses — so "audible disk crosses a
    cut" is decidable from geometry alone.
    """
    params = (config or MesherConfig()).lora
    budget = LinkBudget(pathloss if pathloss is not None else LogDistancePathLoss())
    radius = _batch.max_range_m(budget, params)
    if radius is None:
        raise ValueError(
            "the path-loss model cannot bound its communication range; "
            "sharding needs a finite audible radius"
        )
    return plan_strips(positions, shards, radius)


# ----------------------------------------------------------------------
# One shard (runs inside a worker, or in-process)
# ----------------------------------------------------------------------
class _ShardSim:
    """One strip's network plus its window/exchange machinery."""

    def __init__(
        self,
        index: int,
        plan: ShardPlan,
        all_positions: Sequence[Position],
        all_addresses: Sequence[int],
        owned_indices: Sequence[int],
        *,
        config: Optional[MesherConfig],
        seed: int,
        pathloss: Optional[PathLossModel],
        verify: bool,
        verify_audit_period_s: float,
    ) -> None:
        self.index = index
        self.plan = plan
        self.all_addresses = list(all_addresses)
        self.seed = seed
        self.stats = ShardStats(shard=index, nodes=len(owned_indices))
        self._owner_of_index = {i: plan.shard_of(all_positions[i]) for i in range(len(all_positions))}
        self._exports: List[BoundaryFrame] = []
        self._senders: List = []
        self._prev_window_start = 0.0
        self.checker = None
        if not owned_indices:
            self.net: Optional[MeshNetwork] = None
            return
        self.net = MeshNetwork.from_positions(
            [all_positions[i] for i in owned_indices],
            config=config,
            seed=seed,
            pathloss=pathloss,
            addresses=[all_addresses[i] for i in owned_indices],
            trace_enabled=False,
        )
        self.net.medium.on_transmit_start = self._on_transmit_start
        if verify:
            from repro.verify.invariants import InvariantChecker

            self.checker = InvariantChecker(
                self.net, audit_period_s=verify_audit_period_s, strict=False
            ).attach()

    # -- boundary export -----------------------------------------------
    def _on_transmit_start(self, tx) -> None:
        radius = self.net.medium.max_range_m(tx.params)  # type: ignore[union-attr]
        if radius is None:
            targets = tuple(i for i in range(self.plan.shards) if i != self.index)
        else:
            overlapped = self.plan.shards_overlapping(tx.position, radius)
            if len(overlapped) == 1:
                return  # interior frame: the overwhelmingly common case
            targets = tuple(i for i in overlapped if i != self.index)
        if not targets:
            return
        self._exports.append(
            BoundaryFrame(
                start=tx.start,
                sender_id=tx.sender_id,
                position=tx.position,
                params=tx.params,
                payload=tx.payload,
                airtime=tx.airtime,
                origin_shard=self.index,
                targets=targets,
            )
        )

    # -- window stepping -----------------------------------------------
    def step(
        self, barrier: float, ghosts: Sequence[BoundaryFrame]
    ) -> List[BoundaryFrame]:
        """Inject this window's ghosts, run to ``barrier``, and return
        the boundary frames this shard aired during the window."""
        t0 = perf_counter()
        if self.net is None:
            self.stats.windows += 1
            return []
        medium = self.net.medium
        sim = self.net.sim
        now = sim.now
        prev_start = self._prev_window_start
        for frame in ghosts:
            # Re-air exactly one window after the original start: the
            # frame was sent at ``start`` inside the window
            # [prev_start, now), so ``now + (start - prev_start)`` lands
            # in the window we are about to run with every in-window
            # offset preserved.  Injecting the whole batch at the
            # barrier instant instead would pile all boundary frames
            # onto one instant and make them collide with each other —
            # a drift measured at +362% frames on the E4 n=100 point
            # versus well under 1% for offset-preserving re-air.
            sim.schedule(
                max(0.0, frame.start - prev_start),
                lambda f=frame: medium.inject_external(
                    f.sender_id, f.position, f.params, f.payload, f.airtime
                ),
            )
        self.stats.ghosts_received += len(ghosts)
        self._prev_window_start = now
        self.stats.events += self.net.sim.advance_to(barrier)
        self.stats.windows += 1
        exports, self._exports = self._exports, []
        self.stats.exports_sent += len(exports)
        self.stats.busy_s += perf_counter() - t0
        return exports

    # -- convergence ----------------------------------------------------
    def converged_global(self, addr_array, n_total: int) -> bool:
        """Whether every local node routes to every node of the whole
        mesh (the shard-local conjunct of global convergence)."""
        if self.net is None:
            return True
        if self.plan.shards == 1:
            # Single strip: defer to the serial implementation verbatim,
            # so shards=1 cannot diverge from MeshNetwork.converged().
            return self.net.converged()
        live = [n for n in self.net.nodes if n.radio.powered and n.started]
        needed = n_total - 1
        for node in live:
            if node.table.size < needed:
                return False
        for node in live:
            covers_all = getattr(node.table, "covers_all", None)
            if covers_all is not None:
                if not covers_all(addr_array):
                    return False
                continue
            for address in self.all_addresses:
                if address != node.address and not node.table.has_route(address):
                    return False
        return True

    # -- traffic --------------------------------------------------------
    def attach_traffic(self, traffic: Sequence, recorder: FlowRecorder) -> None:
        """Attach the flows whose *source* lives on this shard (global
        flow indices keep the RNG streams identical to a serial run)."""
        if self.net is None:
            return
        for node in self.net.nodes:
            attach_recorder(recorder, node)
        rngs = RngRegistry(self.seed).fork("traffic")
        for i, spec in enumerate(traffic):
            if self._owner_of_index[spec.src_index] != self.index:
                continue
            src = self.all_addresses[spec.src_index]
            dst = self.all_addresses[spec.dst_index]
            node = self.net.node(src)
            rng = rngs.stream(f"flow{i}")
            if spec.poisson:
                sender = PoissonSender(
                    self.net.sim, src, dst, node.send_datagram,
                    mean_interval_s=spec.period_s, rng=rng,
                    payload_size=spec.payload_size, listener=recorder,
                )
            else:
                sender = PeriodicSender(
                    self.net.sim, src, dst, node.send_datagram,
                    period_s=spec.period_s, rng=rng,
                    payload_size=spec.payload_size, listener=recorder,
                )
            self._senders.append(sender)

    def stop_traffic(self) -> None:
        for sender in self._senders:
            sender.stop()
        self._senders = []

    # -- completion -----------------------------------------------------
    def finish(self) -> Dict:
        """Final audit + the shard's contribution to the merged result."""
        stats = self.stats
        if self.net is None:
            return {"stats": stats, "tables": {}, "checker": None, "frames": 0,
                    "bytes": 0, "airtime_s": 0.0}
        if self.checker is not None:
            self.checker.audit()
        stats.frames_sent = self.net.total_frames_sent()
        stats.bytes_sent = self.net.total_bytes_sent()
        stats.airtime_s = self.net.total_airtime_s()
        return {
            "stats": stats,
            "tables": {node.address: table_digest(node.table) for node in self.net.nodes},
            "checker": self.checker.summary() if self.checker is not None else None,
            "frames": stats.frames_sent,
            "bytes": stats.bytes_sent,
            "airtime_s": stats.airtime_s,
        }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass
class _WorkerSpec:
    """Everything a worker needs to build its shards (must pickle)."""

    plan: ShardPlan
    positions: List[Position]
    addresses: List[int]
    owned: Dict[int, List[int]]  # shard index -> position indices
    config: Optional[MesherConfig]
    seed: int
    pathloss: Optional[PathLossModel]
    traffic: List
    verify: bool
    verify_audit_period_s: float


def _worker_main(conn, spec: _WorkerSpec) -> None:
    """Worker loop: build owned shards, then obey barrier commands."""
    try:
        shards = [
            _ShardSim(
                index,
                spec.plan,
                spec.positions,
                spec.addresses,
                indices,
                config=spec.config,
                seed=spec.seed,
                pathloss=spec.pathloss,
                verify=spec.verify,
                verify_audit_period_s=spec.verify_audit_period_s,
            )
            for index, indices in sorted(spec.owned.items())
        ]
        recorder = FlowRecorder()
        addr_array = _address_array(spec.addresses)
        conn.send(("ready", None))
        wait_started = perf_counter()
        while True:
            message = conn.recv()
            waited = perf_counter() - wait_started
            for shard in shards:
                shard.stats.barrier_wait_s += waited / max(1, len(shards))
            command = message[0]
            if command == "step":
                _, barrier, ghosts_by_shard, check = message
                exports: List[BoundaryFrame] = []
                converged = True
                for shard in shards:
                    exports.extend(
                        shard.step(barrier, ghosts_by_shard.get(shard.index, ()))
                    )
                    if check and converged:
                        converged = shard.converged_global(
                            addr_array, len(spec.addresses)
                        )
                conn.send(("stepped", exports, converged if check else None))
            elif command == "attach_traffic":
                for shard in shards:
                    shard.attach_traffic(spec.traffic, recorder)
                conn.send(("ok", None))
            elif command == "stop_traffic":
                for shard in shards:
                    shard.stop_traffic()
                conn.send(("ok", None))
            elif command == "finish":
                conn.send(("finished", ([shard.finish() for shard in shards], recorder)))
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown shard command {command!r}")
            wait_started = perf_counter()
    except Exception:  # pragma: no cover - surfaced by the coordinator
        import traceback

        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _address_array(addresses: Sequence[int]):
    try:
        from repro.net.routing_store import HAVE_NUMPY, as_address_array

        if HAVE_NUMPY:
            return as_address_array(addresses)
    except ImportError:  # pragma: no cover
        pass
    return list(addresses)


# ----------------------------------------------------------------------
# Shard groups: uniform stepping over in-process and piped shards
# ----------------------------------------------------------------------
class _LocalGroup:
    """Shards executed inline (workers <= 1): zero IPC, same protocol."""

    def __init__(self, spec: _WorkerSpec) -> None:
        self.shards = [
            _ShardSim(
                index, spec.plan, spec.positions, spec.addresses, indices,
                config=spec.config, seed=spec.seed, pathloss=spec.pathloss,
                verify=spec.verify, verify_audit_period_s=spec.verify_audit_period_s,
            )
            for index, indices in sorted(spec.owned.items())
        ]
        self.spec = spec
        self.recorder = FlowRecorder()
        self._addr_array = _address_array(spec.addresses)

    def step(self, barrier, ghosts_by_shard, check):
        exports: List[BoundaryFrame] = []
        converged = True
        for shard in self.shards:
            exports.extend(shard.step(barrier, ghosts_by_shard.get(shard.index, ())))
            if check and converged:
                converged = shard.converged_global(
                    self._addr_array, len(self.spec.addresses)
                )
        return exports, (converged if check else None)

    def attach_traffic(self) -> None:
        for shard in self.shards:
            shard.attach_traffic(self.spec.traffic, self.recorder)

    def stop_traffic(self) -> None:
        for shard in self.shards:
            shard.stop_traffic()

    def finish(self):
        return [shard.finish() for shard in self.shards], self.recorder

    def close(self) -> None:
        pass


class _ProcessGroup:
    """Shards executed in one worker process, driven over a pipe."""

    def __init__(self, spec: _WorkerSpec, ctx) -> None:
        self._conn, child = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main, args=(child, spec), daemon=True)
        self.process.start()
        child.close()
        self._expect("ready")

    def _expect(self, kind: str):
        message = self._conn.recv()
        if message[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{message[1]}")
        if message[0] != kind:  # pragma: no cover - protocol bug
            raise RuntimeError(f"expected {kind!r}, got {message[0]!r}")
        return message[1:]

    def step_send(self, barrier, ghosts_by_shard, check) -> None:
        self._conn.send(("step", barrier, ghosts_by_shard, check))

    def step_recv(self):
        exports, converged = self._expect("stepped")
        return exports, converged

    def attach_traffic(self) -> None:
        self._conn.send(("attach_traffic",))
        self._expect("ok")

    def stop_traffic(self) -> None:
        self._conn.send(("stop_traffic",))
        self._expect("ok")

    def finish(self):
        self._conn.send(("finish",))
        summaries, recorder = self._expect("finished")[0]
        return summaries, recorder

    def close(self) -> None:
        try:
            self._conn.close()
        finally:
            if self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=10.0)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ShardedRunResult:
    """Merged outcome of one sharded run (fingerprint-compatible with a
    serial :func:`network_fingerprint`)."""

    shards: int
    workers: int
    window_s: float
    plan: ShardPlan
    convergence_s: Optional[float]
    frames: int
    bytes: int
    airtime_s: float
    fingerprint: Dict
    stats: List[ShardStats]
    recorder: FlowRecorder
    checker: Optional[ShardedInvariantReport]
    sim_time_s: float
    wall_s: float

    @property
    def boundary_exports(self) -> int:
        """Boundary frames exported across all shards."""
        return sum(s.exports_sent for s in self.stats)

    @property
    def ghosts_injected(self) -> int:
        """Ghost frames injected across all shards."""
        return sum(s.ghosts_received for s in self.stats)

    def load_imbalance(self) -> float:
        """max/mean busy wall-clock over shards (1.0 = perfectly even)."""
        busy = [s.busy_s for s in self.stats if s.nodes]
        if not busy or not sum(busy):
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------
def run_sharded(
    positions: Sequence[Position],
    *,
    shards: int,
    config: Optional[MesherConfig] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    window_s: float = 1.0,
    converge: bool = True,
    converge_timeout_s: float = 3600.0,
    check_period_s: float = 10.0,
    duration_s: float = 0.0,
    drain_s: float = 0.0,
    traffic: Sequence = (),
    verify: bool = False,
    verify_audit_period_s: float = 30.0,
    pathloss: Optional[PathLossModel] = None,
    addresses: Optional[Sequence[int]] = None,
    plan: Optional[ShardPlan] = None,
    extend_to_s: Optional[float] = None,
) -> ShardedRunResult:
    """Run one mesh partitioned into ``shards`` strips.

    ``workers`` caps the number of processes (default: one per shard;
    ``workers <= 1`` runs every shard in-process, which is the reference
    execution the multi-process path must reproduce bit-exactly).  The
    run first converges (unless ``converge=False``), then drives
    ``traffic`` for ``duration_s`` plus a ``drain_s`` tail — the same
    phase structure as :func:`repro.experiments.runner.run_protocol`.

    ``check_period_s`` must be an integer multiple of ``window_s``;
    convergence is evaluated at exactly the instants a serial
    ``run_until_converged`` would evaluate it, so ``shards=1`` returns
    the identical convergence time.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if converge:
        ratio = check_period_s / window_s
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise ValueError(
                f"check_period_s ({check_period_s}) must be an integer "
                f"multiple of window_s ({window_s})"
            )
    if plan is None:
        plan = make_plan(positions, shards, config=config, pathloss=pathloss)
    elif plan.shards != shards:
        raise ValueError(f"plan has {plan.shards} strips, expected {shards}")
    all_addresses = (
        list(addresses) if addresses is not None
        else [0x0001 + i for i in range(len(positions))]
    )
    owned_by_shard = {i: [] for i in range(shards)}
    for index, owner in enumerate(plan.partition(positions)):
        owned_by_shard[index] = owner

    n_workers = shards if workers is None else max(1, min(workers, shards))
    wall_start = perf_counter()

    # --- build groups (shard -> group round-robin by shard index) ------
    groups: List = []
    shard_group: Dict[int, int] = {}
    if n_workers <= 1 or shards == 1:
        n_workers = 1
        spec = _WorkerSpec(
            plan=plan, positions=list(positions), addresses=all_addresses,
            owned=owned_by_shard, config=config, seed=seed, pathloss=pathloss,
            traffic=list(traffic), verify=verify,
            verify_audit_period_s=verify_audit_period_s,
        )
        groups.append(_LocalGroup(spec))
        shard_group = {i: 0 for i in range(shards)}
    else:
        ctx = multiprocessing.get_context()
        for w in range(n_workers):
            owned = {i: owned_by_shard[i] for i in range(shards) if i % n_workers == w}
            spec = _WorkerSpec(
                plan=plan, positions=list(positions), addresses=all_addresses,
                owned=owned, config=config, seed=seed, pathloss=pathloss,
                traffic=list(traffic), verify=verify,
                verify_audit_period_s=verify_audit_period_s,
            )
            groups.append(_ProcessGroup(spec, ctx))
            for i in owned:
                shard_group[i] = w

    pending: Dict[int, List[BoundaryFrame]] = {}

    def route(exports: Sequence[BoundaryFrame]) -> None:
        for frame in exports:
            for target in frame.targets:
                pending.setdefault(target, []).append(frame)

    def step_all(barrier: float, check: bool) -> Optional[bool]:
        nonlocal pending
        ghosts_by_group: List[Dict[int, List[BoundaryFrame]]] = [
            {} for _ in groups
        ]
        for target, frames in pending.items():
            frames.sort(key=lambda f: (f.start, f.sender_id))
            ghosts_by_group[shard_group[target]][target] = frames
        pending = {}
        if len(groups) == 1:
            exports, converged = groups[0].step(barrier, ghosts_by_group[0], check)
            route(exports)
            return converged
        for group, ghosts in zip(groups, ghosts_by_group):
            group.step_send(barrier, ghosts, check)
        converged: Optional[bool] = True if check else None
        for group in groups:
            exports, group_conv = group.step_recv()
            route(exports)
            if check and not group_conv:
                converged = False
        return converged

    def run_phase(until: float) -> None:
        now = _clock[0]
        while now < until:
            barrier = min(now + window_s, until)
            step_all(barrier, check=False)
            now = barrier
        _clock[0] = now

    _clock = [0.0]
    convergence: Optional[float] = None
    try:
        # --- phase 1: convergence -------------------------------------
        if converge:
            per_check = round(check_period_s / window_s)
            deadline = _clock[0] + converge_timeout_s
            window_index = 0
            now = _clock[0]
            start = now
            while now < deadline:
                barrier = min(now + window_s, deadline)
                window_index += 1
                check = (window_index % per_check == 0) or barrier >= deadline
                converged = step_all(barrier, check)
                now = barrier
                if check and converged:
                    convergence = now - start
                    break
            _clock[0] = now

        # --- phase 2: traffic + drain ---------------------------------
        if duration_s > 0:
            for group in groups:
                group.attach_traffic()
            run_phase(_clock[0] + duration_s)
            for group in groups:
                group.stop_traffic()
            if drain_s > 0:
                run_phase(_clock[0] + drain_s)
        if extend_to_s is not None and _clock[0] < extend_to_s:
            # CLI semantics: keep the mesh running out to a total
            # simulated time regardless of when convergence landed.
            run_phase(extend_to_s)

        # --- collect ---------------------------------------------------
        recorder = FlowRecorder()
        summaries: List[Dict] = []
        for group in groups:
            group_summaries, group_recorder = group.finish()
            summaries.extend(group_summaries)
            recorder.merge_from(group_recorder)
    finally:
        for group in groups:
            group.close()

    stats = sorted((s["stats"] for s in summaries), key=lambda st: st.shard)
    frames = sum(s["frames"] for s in summaries)
    bytes_sent = sum(s["bytes"] for s in summaries)
    airtime = sum(s["airtime_s"] for s in summaries)
    tables: Dict[int, str] = {}
    for s in summaries:
        tables.update(s["tables"])
    checker: Optional[ShardedInvariantReport] = None
    if verify:
        checker = ShardedInvariantReport()
        for s in summaries:
            if s["checker"] is not None:
                checker.absorb(s["checker"])
    fingerprint = {
        "frames": frames,
        "bytes": bytes_sent,
        "tables": tables,
        "digest": _combine_fingerprint(frames, bytes_sent, tables),
        "convergence_s": convergence,
    }
    return ShardedRunResult(
        shards=shards,
        workers=n_workers,
        window_s=window_s,
        plan=plan,
        convergence_s=convergence,
        frames=frames,
        bytes=bytes_sent,
        airtime_s=airtime,
        fingerprint=fingerprint,
        stats=stats,
        recorder=recorder,
        checker=checker,
        sim_time_s=_clock[0],
        wall_s=perf_counter() - wall_start,
    )
