"""Exception hierarchy for the simulation kernel."""


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SimulationFinished(SimulationError):
    """Raised internally when the event queue drains before the horizon."""


class ProcessKilled(SimulationError):
    """Injected into a generator process that is being forcibly terminated.

    Processes may catch this to run cleanup, but must re-raise (or simply
    return) promptly; scheduling further events from a killed process is an
    error.
    """


class SchedulingError(SimulationError):
    """Raised for invalid scheduling requests (negative delay, past time)."""
