"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped callbacks and a
simulated clock.  Everything else in the stack — PHY transmissions, radio
state transitions, LoRaMesher timers — is expressed as events scheduled on
one shared kernel, which makes whole-network runs fully deterministic for a
given master seed.

Determinism rules
-----------------
* Events at equal timestamps fire in scheduling order (a monotonically
  increasing sequence number breaks ties).
* The kernel never consults wall-clock time.
* All randomness must come from :class:`repro.sim.rng.RngRegistry` streams.
"""

from __future__ import annotations

import heapq
import logging
from time import perf_counter
from typing import Any, Callable, Optional, Union

from repro.sim.errors import SchedulingError, SimulationError

logger = logging.getLogger(__name__)

#: Events scheduled with this priority run before ordinary events that share
#: the same timestamp (used by the medium to finalise receptions before
#: protocol timers observe them).
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Labels may be given as plain strings or as zero-argument callables that
#: are only invoked when something (a profiler, a log line, a handle
#: accessor) actually reads the label — hot paths schedule millions of
#: events whose labels are never looked at.
Label = Union[str, Callable[[], str]]


class _Event:
    """Internal event record.

    The heap itself stores ``(time, priority, seq, event)`` tuples so that
    heap sift comparisons stay in C (the unique ``seq`` guarantees the
    tuple comparison never falls through to the event object).
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "fired", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: Label = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False
        self.label = label

    def label_str(self) -> str:
        """Resolve the (possibly lazy) label to a string."""
        label = self.label
        return label if isinstance(label, str) else label()


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`Simulator.schedule`.  Cancelling an already-fired or
    already-cancelled event is a harmless no-op, which lets protocol code
    unconditionally cancel timers on state transitions.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulated time at which the event will (or did) fire."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label_str()

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.fired:
                self._sim._pending -= 1


class Simulator:
    """A deterministic discrete-event scheduler with a simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run(until=10.0)

    The kernel is single-threaded and re-entrant: callbacks may freely
    schedule further events, including at the current instant.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, _Event]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._events_fired: int = 0
        #: Live (non-cancelled, not-yet-fired) events in the queue,
        #: maintained on push/cancel/pop so ``pending`` is O(1).
        self._pending: int = 0
        #: Optional observability hook (see :mod:`repro.obs.profiler`).
        #: When set, every executed event is timed with wall-clock and
        #: reported via ``profiler.record(label, callback, elapsed_s)``.
        #: Costs nothing when None.
        self.profiler: Optional[Any] = None
        # Wall-clock anchor for observability timestamps (see
        # ``wall_elapsed``); never read by the kernel itself.
        self._wall_start: float = perf_counter()

    def wall_elapsed(self) -> float:
        """Wall-clock seconds since this simulator was constructed.

        Purely diagnostic: the event store records it next to every
        simulated timestamp so live dashboards can show how far the
        sim clock runs ahead of (or behind) real time.  Nothing in the
        kernel or the protocol stack reads it, so results stay
        deterministic.
        """
        return perf_counter() - self._wall_start

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue.

        Maintained incrementally on schedule/cancel/fire, so reading it is
        O(1) even with millions of queued events.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative.  Returns an :class:`EventHandle`
        that can cancel the event before it fires.  ``label`` may be a
        string or a zero-argument callable built only when the label is
        actually read (profiler attached, handle inspected).
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        # Inlined schedule_at (minus the past-time guard, which a
        # non-negative delay cannot trip): protocol layers schedule one or
        # more events per frame, making this the kernel's hottest entry.
        if not callable(callback):
            raise SchedulingError(f"callback {callback!r} is not callable")
        time = self._now + delay
        event = _Event(time, priority, self._seq, callback, label)
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        self._pending += 1
        return EventHandle(event, self)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = PRIORITY_NORMAL,
        label: Label = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SchedulingError(f"cannot schedule at {time} < now {self._now}")
        if not callable(callback):
            raise SchedulingError(f"callback {callback!r} is not callable")
        event = _Event(time, priority, self._seq, callback, label)
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        self._pending += 1
        return EventHandle(event, self)

    def call_soon(self, callback: Callable[[], None], *, label: Label = "") -> EventHandle:
        """Schedule ``callback`` at the current instant, after pending
        same-time events already in the queue."""
        return self.schedule(0.0, callback, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event fired, ``False`` if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue time went backwards")
            self._now = event.time
            self._events_fired += 1
            event.fired = True
            self._pending -= 1
            self._execute(event)
            return True
        return False

    def _execute(self, event: _Event) -> None:
        profiler = self.profiler
        if profiler is None:
            event.callback()
            return
        start = perf_counter()
        event.callback()
        profiler.record(event.label_str(), event.callback, perf_counter() - start)

    def run(self, until: Optional[float] = None, *, max_events: Optional[int] = None) -> float:
        """Run events until the horizon ``until`` (or queue exhaustion).

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so back-to-back
        ``run`` calls observe a continuous timeline.  ``max_events`` bounds
        runaway simulations (useful in tests).

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                event = heap[0][3]
                if event.cancelled:
                    heappop(heap)
                    continue
                if until is not None and event.time > until:
                    break
                heappop(heap)
                self._now = event.time
                self._events_fired += 1
                event.fired = True
                self._pending -= 1
                # Inlined dispatch: the profiled path lives in _execute,
                # the common (unprofiled) path skips the extra call frame.
                if self.profiler is None:
                    event.callback()
                else:
                    self._execute(event)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded at t={self._now:.6f}"
                    )
            if until is not None and not self._stopped and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that the current :meth:`run` return after the running
        callback completes. Pending events remain queued."""
        self._stopped = True

    def advance_to(self, barrier: float) -> int:
        """Run to the conservative window barrier ``barrier`` (absolute
        simulated time) and land the clock exactly on it.

        The sharded runner (:mod:`repro.sim.shard`) slices one shard's
        timeline into windows with this: events at or before the barrier
        fire, the clock is left at exactly ``barrier`` even if the queue
        drained early (so back-to-back windows observe a continuous
        timeline), and the number of events executed inside the window
        comes back for per-shard load accounting.  Barriers must be
        monotonic — rewinding a shard is always a synchronisation bug,
        so it raises instead of silently no-opping.
        """
        if barrier < self._now:
            raise SchedulingError(
                f"window barrier {barrier} is behind the clock {self._now}"
            )
        before = self._events_fired
        self.run(until=barrier)
        return self._events_fired - before

    # ------------------------------------------------------------------
    # Convenience timer helpers
    # ------------------------------------------------------------------
    def periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> "PeriodicTimer":
        """Create and start a cancellable periodic timer.

        ``jitter``, when provided, is called before every firing and its
        return value (seconds, may be negative but clamped at 0 total
        delay) is added to the period — this is how protocol layers model
        randomized beacon intervals without touching the kernel.
        """
        timer = PeriodicTimer(self, period, callback, jitter=jitter, label=label)
        timer.start(first_delay=first_delay)
        return timer


class PeriodicTimer:
    """A restartable periodic timer built on top of :class:`Simulator`.

    The callback runs every ``period`` seconds (plus optional per-firing
    jitter) until :meth:`cancel` is called.  Exceptions propagate and stop
    the timer — silent failure would mask protocol bugs.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        jitter: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._cancelled = False
        self._fired = 0

    @property
    def fired(self) -> int:
        """How many times the timer has fired."""
        return self._fired

    @property
    def active(self) -> bool:
        """True while the timer is armed."""
        return not self._cancelled

    @property
    def period(self) -> float:
        """Nominal period in seconds."""
        return self._period

    def start(self, *, first_delay: Optional[float] = None) -> None:
        """(Re-)arm the timer; the first firing happens after
        ``first_delay`` (default: one jittered period)."""
        self._cancelled = False
        delay = first_delay if first_delay is not None else self._next_delay()
        self._handle = self._sim.schedule(delay, self._fire, label=self._label)

    def cancel(self) -> None:
        """Stop the timer. Idempotent."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def reset(self) -> None:
        """Cancel any pending firing and re-arm from now."""
        self.cancel()
        self.start()

    def _next_delay(self) -> float:
        delay = self._period
        if self._jitter is not None:
            delay += self._jitter()
        return max(0.0, delay)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._fired += 1
        # Re-arm before running the callback so a callback that cancels the
        # timer wins over the re-arm.
        self._handle = self._sim.schedule(self._next_delay(), self._fire, label=self._label)
        self._callback()


def format_time(seconds: float) -> str:
    """Render a simulated timestamp as ``H:MM:SS.mmm`` for logs."""
    total_ms = int(round(seconds * 1000))
    ms = total_ms % 1000
    s = (total_ms // 1000) % 60
    m = (total_ms // 60_000) % 60
    h = total_ms // 3_600_000
    return f"{h}:{m:02d}:{s:02d}.{ms:03d}"


def any_to_label(obj: Any) -> str:
    """Best-effort short label for diagnostics."""
    name = getattr(obj, "name", None)
    if isinstance(name, str):
        return name
    return type(obj).__name__
