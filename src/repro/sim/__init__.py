"""Discrete-event simulation kernel.

This package is the substrate that replaces the paper's FreeRTOS runtime:
a deterministic, single-threaded event scheduler with simulated time,
cancellable timers, lightweight generator-based processes, and named
deterministic random-number streams.

The kernel is intentionally small and dependency-free so that every other
subsystem (PHY, medium, radio driver, the LoRaMesher protocol itself) can
be tested against it in isolation.
"""

from repro.sim.errors import SimulationError, SimulationFinished, ProcessKilled
from repro.sim.kernel import Simulator, EventHandle
from repro.sim.process import Process, Timeout, Waiter
from repro.sim.rng import RngRegistry

__all__ = [
    "Simulator",
    "EventHandle",
    "Process",
    "Timeout",
    "Waiter",
    "RngRegistry",
    "SimulationError",
    "SimulationFinished",
    "ProcessKilled",
]
