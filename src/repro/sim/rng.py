"""Deterministic named random-number streams.

Every stochastic decision in the stack (shadowing draws, packet-loss
injection, protocol backoff, traffic inter-arrival times) pulls from a
*named* stream derived from one master seed.  Naming the streams decouples
subsystems: adding a draw to the PHY does not perturb the sequence the
traffic generator sees, so experiments stay comparable across code changes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import random


class RngRegistry:
    """A factory of independent, reproducible ``random.Random`` streams.

    >>> rngs = RngRegistry(master_seed=42)
    >>> a = rngs.stream("phy.shadowing")
    >>> b = rngs.stream("traffic.node3")
    >>> a is rngs.stream("phy.shadowing")
    True

    Stream seeds are derived by hashing ``(master_seed, name)`` with
    SHA-256, so they are stable across Python versions and processes
    (unlike ``hash()``).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed from which every stream is derived."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"stream name must be a non-empty string, got {name!r}")
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self.derive_seed(name))
            self._streams[name] = rng
        return rng

    def derive_seed(self, name: str) -> int:
        """The integer seed a stream of this name receives."""
        digest = hashlib.sha256(f"{self._master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (for e.g. per-trial sub-seeding)."""
        return RngRegistry(self.derive_seed(f"fork:{salt}"))

    def names(self) -> Iterator[str]:
        """Names of all streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:
        return f"RngRegistry(master_seed={self._master_seed}, streams={len(self._streams)})"
