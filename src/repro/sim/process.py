"""Lightweight generator-based processes on top of the kernel.

The LoRaMesher firmware is structured as FreeRTOS tasks that block on
queues and delays.  :class:`Process` gives Python code the same shape:
a generator that ``yield``\\ s :class:`Timeout` or :class:`Waiter` objects
and is resumed by the kernel when the wait completes.

This is a deliberately small subset of a full process algebra (no
``AllOf``/``AnyOf`` combinators) — protocol code in this repository is
mostly callback/timer driven, and processes are used for workloads and
scenario scripts where sequential narration reads better.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.errors import ProcessKilled, SimulationError
from repro.sim.kernel import EventHandle, Simulator


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Waiter:
    """A one-shot condition a process can yield on.

    Some other piece of code calls :meth:`fire` (optionally with a value);
    every process (and callback) waiting on the waiter is resumed with that
    value.  Firing twice is an error — create a fresh waiter per event.
    """

    __slots__ = ("_fired", "_value", "_callbacks", "name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._fired = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def fired(self) -> bool:
        """Whether :meth:`fire` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value passed to :meth:`fire` (None before firing)."""
        return self._value

    def fire(self, value: Any = None) -> None:
        """Resume everything waiting on this waiter."""
        if self._fired:
            raise SimulationError(f"Waiter {self.name!r} fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the waiter fires (immediately if
        it already has)."""
        if self._fired:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Process:
    """A generator coroutine driven by the simulation kernel.

    The generator may yield:

    * ``Timeout(dt)`` — resume after ``dt`` simulated seconds,
    * ``Waiter`` — resume (with the fired value sent into the generator)
      when someone fires it,
    * another ``Process`` — resume when that process finishes.

    The process's return value (via ``return x`` in the generator) is
    available as :attr:`result` once :attr:`done` is true.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        *,
        name: str = "",
    ) -> None:
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._done = False
        self._killed = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._completion = Waiter(name=f"{self.name}.done")
        self._pending_handle: Optional[EventHandle] = None
        # Kick off at the current instant so construction order == start order.
        self._pending_handle = sim.call_soon(lambda: self._resume(None), label=f"start {self.name}")

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once the generator has returned, raised, or been killed."""
        return self._done

    @property
    def result(self) -> Any:
        """The generator's return value (raises if it failed)."""
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def completion(self) -> Waiter:
        """Waiter fired (with the result) when the process finishes."""
        return self._completion

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if self._done:
            return
        self._killed = True
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        try:
            self._gen.throw(ProcessKilled(f"process {self.name} killed"))
        except (StopIteration, ProcessKilled):
            pass
        except BaseException as exc:  # cleanup code raised something else
            self._error = exc
        self._finish(None)

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self._done:
            return
        self._pending_handle = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._result = stop.value
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._error = exc
            self._finish(None)
            raise
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_handle = self._sim.schedule(
                yielded.delay, lambda: self._resume(None), label=f"{self.name} timeout"
            )
        elif isinstance(yielded, Waiter):
            yielded.add_callback(self._resume)
        elif isinstance(yielded, Process):
            yielded.completion.add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported {yielded!r} "
                "(expected Timeout, Waiter, or Process)"
            )

    def _finish(self, value: Any) -> None:
        self._done = True
        if not self._completion.fired:
            self._completion.fire(value)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"
