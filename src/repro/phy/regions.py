"""Regional regulatory parameters and duty-cycle accounting.

The demo operated in the EU 868 MHz band, where a device may occupy the
shared sub-band for at most 1% of time (ETSI EN 300 220).  LoRaMesher's
beacon period and queue pacing are designed around this budget, so the
reproduction enforces it explicitly: every node owns a
:class:`DutyCycleAccountant` that tracks transmit airtime over a sliding
window and answers "may I transmit this frame now, and if not, when?".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple


@dataclass(frozen=True)
class Region:
    """Regulatory envelope for one region/sub-band."""

    name: str
    duty_cycle: float  # fraction of time a device may transmit (0..1]
    max_dwell_time_s: float  # maximum single-frame airtime (inf if none)
    max_eirp_dbm: float
    window_s: float = 3600.0  # averaging window for the duty cycle

    def __post_init__(self) -> None:
        if not 0 < self.duty_cycle <= 1:
            raise ValueError(f"duty cycle must be in (0, 1], got {self.duty_cycle}")
        if self.window_s <= 0:
            raise ValueError("duty-cycle window must be positive")


#: ETSI EN 300 220 g1 sub-band (868.0–868.6 MHz): 1% duty cycle, 14 dBm ERP.
EU868 = Region(name="EU868", duty_cycle=0.01, max_dwell_time_s=float("inf"), max_eirp_dbm=14.0)

#: FCC part 15.247 (US 915 MHz): no duty cycle, but 400 ms dwell per channel.
US915 = Region(name="US915", duty_cycle=1.0, max_dwell_time_s=0.4, max_eirp_dbm=30.0)

#: A permissive region for unconstrained experiments.
UNRESTRICTED = Region(
    name="UNRESTRICTED", duty_cycle=1.0, max_dwell_time_s=float("inf"), max_eirp_dbm=30.0
)


class DutyCycleViolation(Exception):
    """Raised when a frame would break the regulatory envelope and the
    caller asked for strict enforcement."""


class DutyCycleAccountant:
    """Sliding-window duty-cycle tracker for one transmitter.

    Records every transmission ``(start, airtime)`` and answers whether a
    prospective frame fits the regional budget over the trailing window.
    The record list is pruned lazily, so memory stays bounded at the
    number of frames per window.
    """

    def __init__(self, region: Region) -> None:
        self.region = region
        self._records: Deque[Tuple[float, float]] = deque()
        self._total_airtime: float = 0.0
        self._window_airtime: float = 0.0

    @property
    def total_airtime_s(self) -> float:
        """Lifetime transmit airtime in seconds (never pruned)."""
        return self._total_airtime

    def record(self, now: float, airtime_s: float) -> None:
        """Account a transmission that starts at ``now``."""
        if airtime_s < 0:
            raise ValueError("airtime must be >= 0")
        if airtime_s > self.region.max_dwell_time_s:
            raise DutyCycleViolation(
                f"frame airtime {airtime_s * 1000:.1f} ms exceeds {self.region.name} "
                f"dwell limit {self.region.max_dwell_time_s * 1000:.0f} ms"
            )
        self._prune(now)
        self._records.append((now, airtime_s))
        self._total_airtime += airtime_s
        self._window_airtime += airtime_s

    def window_utilisation(self, now: float) -> float:
        """Fraction of the trailing window spent transmitting."""
        self._prune(now)
        return self._window_airtime / self.region.window_s

    def can_transmit(self, now: float, airtime_s: float) -> bool:
        """Whether a frame of ``airtime_s`` fits the budget right now."""
        if airtime_s > self.region.max_dwell_time_s:
            return False
        self._prune(now)
        budget = self.region.duty_cycle * self.region.window_s
        return self._window_airtime + airtime_s <= budget

    def next_allowed_time(self, now: float, airtime_s: float) -> float:
        """Earliest time at which a frame of ``airtime_s`` may start.

        Returns ``now`` when it already fits.  Otherwise walks the record
        queue forward until enough airtime has aged out of the window.
        """
        if airtime_s > self.region.max_dwell_time_s:
            raise DutyCycleViolation(
                f"frame airtime {airtime_s:.3f}s can never fit "
                f"{self.region.name} dwell limit"
            )
        self._prune(now)
        budget = self.region.duty_cycle * self.region.window_s
        if self._window_airtime + airtime_s <= budget:
            return now
        needed = self._window_airtime + airtime_s - budget
        freed = 0.0
        for start, duration in self._records:
            freed += duration
            if freed >= needed:
                return start + self.region.window_s
        # Should be unreachable: pruning keeps _window_airtime == sum(records).
        raise DutyCycleViolation("duty-cycle accounting is inconsistent")

    def _prune(self, now: float) -> None:
        horizon = now - self.region.window_s
        while self._records and self._records[0][0] <= horizon:
            _, duration = self._records.popleft()
            self._window_airtime -= duration
        if self._window_airtime < 0:  # float drift guard
            self._window_airtime = 0.0
