"""LoRa modulation parameters.

LoRa trades data rate for range through three knobs the LoRaMesher library
exposes to applications: spreading factor (SF7–SF12), bandwidth (125/250/
500 kHz), and coding rate (4/5 – 4/8).  This module defines validated types
for those knobs plus the :class:`LoRaParams` bundle every PHY computation
takes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SpreadingFactor(enum.IntEnum):
    """LoRa spreading factor: chips per symbol is ``2**SF``.

    Higher SF → longer symbols → better sensitivity and range, at an
    exponential cost in airtime.
    """

    SF7 = 7
    SF8 = 8
    SF9 = 9
    SF10 = 10
    SF11 = 11
    SF12 = 12

    @property
    def chips_per_symbol(self) -> int:
        """Number of chips in one symbol (``2**SF``)."""
        return 1 << int(self)


class Bandwidth(enum.IntEnum):
    """LoRa channel bandwidth in Hz (the SX127x supports more, these are
    the three used in practice and by LoRaMesher)."""

    BW125 = 125_000
    BW250 = 250_000
    BW500 = 500_000

    @property
    def hz(self) -> int:
        """Bandwidth in hertz."""
        return int(self)

    @property
    def khz(self) -> float:
        """Bandwidth in kilohertz."""
        return int(self) / 1000.0


class CodingRate(enum.IntEnum):
    """Forward-error-correction rate 4/(4+CR): CR=1 → 4/5 ... CR=4 → 4/8."""

    CR4_5 = 1
    CR4_6 = 2
    CR4_7 = 3
    CR4_8 = 4

    @property
    def denominator(self) -> int:
        """The ``x`` in coding rate 4/x."""
        return 4 + int(self)

    @property
    def ratio(self) -> float:
        """Useful-bit fraction 4/(4+CR)."""
        return 4.0 / self.denominator


#: Default preamble length used by the SX127x drivers LoRaMesher builds on.
DEFAULT_PREAMBLE_SYMBOLS = 8

#: Default transmit power (dBm) of the TTGO LoRa32 boards in the demo.
DEFAULT_TX_POWER_DBM = 14.0

#: EU868 centre frequency used by the paper's testbed (MHz).
DEFAULT_FREQUENCY_MHZ = 868.0


@dataclass(frozen=True)
class LoRaParams:
    """The full set of modulation parameters for one transmission.

    ``explicit_header`` matches the SX127x explicit-header mode LoRaMesher
    uses (the PHY header carries length/CR/CRC flags).  ``low_data_rate``
    is resolved automatically when ``None``: the LDRO mandated for symbol
    durations >= 16 ms (SF11/SF12 at BW125).
    """

    spreading_factor: SpreadingFactor = SpreadingFactor.SF7
    bandwidth: Bandwidth = Bandwidth.BW125
    coding_rate: CodingRate = CodingRate.CR4_5
    preamble_symbols: int = DEFAULT_PREAMBLE_SYMBOLS
    explicit_header: bool = True
    crc_enabled: bool = True
    low_data_rate: bool | None = None
    frequency_mhz: float = DEFAULT_FREQUENCY_MHZ
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM

    def __post_init__(self) -> None:
        if self.preamble_symbols < 6:
            raise ValueError(
                f"preamble must be >= 6 symbols (SX127x minimum), got {self.preamble_symbols}"
            )
        if not 137.0 <= self.frequency_mhz <= 1020.0:
            raise ValueError(f"frequency {self.frequency_mhz} MHz outside SX127x range")
        if not -4.0 <= self.tx_power_dbm <= 20.0:
            raise ValueError(f"tx power {self.tx_power_dbm} dBm outside SX127x range")

    @property
    def symbol_time(self) -> float:
        """Symbol duration in seconds: ``2**SF / BW``."""
        return self.spreading_factor.chips_per_symbol / self.bandwidth.hz

    @property
    def ldro_enabled(self) -> bool:
        """Low-data-rate optimisation, auto-resolved when unset.

        Semtech mandates LDRO when the symbol time reaches 16 ms, which at
        BW125 means SF11 and SF12.
        """
        if self.low_data_rate is not None:
            return self.low_data_rate
        return self.symbol_time >= 0.016

    @property
    def raw_bitrate(self) -> float:
        """Instantaneous PHY bitrate in bits/s (before framing overhead)."""
        sf = int(self.spreading_factor)
        return sf * self.coding_rate.ratio * self.bandwidth.hz / self.spreading_factor.chips_per_symbol

    def replace(self, **changes) -> "LoRaParams":
        """Return a copy with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


#: Parameter sets commonly swept in the benchmarks.
ALL_SPREADING_FACTORS = tuple(SpreadingFactor)
ALL_BANDWIDTHS = tuple(Bandwidth)
ALL_CODING_RATES = tuple(CodingRate)
