"""Propagation / path-loss models.

The paper's demo spread TTGO boards through a building so that not every
node could hear every other — that connectivity structure is what makes
the mesh interesting.  We reproduce it with standard parametric models:

* :class:`FreeSpacePathLoss` — Friis free-space loss (outdoor line of sight),
* :class:`LogDistancePathLoss` — log-distance with optional log-normal
  shadowing, the standard LoRa simulation model (exponent ~2.7–3.5 urban),
* :class:`MultiWallPathLoss` — log-distance plus a per-wall penalty for
  indoor deployments like the demo's.

All models map a (tx position, rx position) pair to a loss in dB; the
shadowing component, when enabled, is *frozen per link* (drawn once from a
named RNG stream and cached) so the channel is static during a run, as is
standard in LoRa mesh evaluations.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import random

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

Position = Tuple[float, float]


if _np is not None:
    # The scalar models route their transcendental ops through numpy so
    # that the vectorized batch engine (repro.phy.batch) is bit-identical
    # to the scalar path: numpy's SIMD log10/hypot kernels differ from
    # libm's math.log10/math.hypot in the last ulp, but numpy agrees with
    # itself between scalar and array calls.  Everything else in the loss
    # formulas is +/-/*//, which IEEE 754 rounds identically everywhere.
    _np_log10 = _np.log10
    _np_hypot = _np.hypot

    def _log10(x: float) -> float:
        return float(_np_log10(x))

    def _hypot(x: float, y: float) -> float:
        return float(_np_hypot(x, y))

else:  # pragma: no cover - exercised only on stripped installs
    _log10 = math.log10
    _hypot = math.hypot


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two planar positions in metres."""
    return _hypot(a[0] - b[0], a[1] - b[1])


class PathLossModel:
    """Interface: loss in dB between two positions at a carrier frequency."""

    def loss_db(self, tx: Position, rx: Position, frequency_mhz: float) -> float:
        """Path loss (positive dB) from ``tx`` to ``rx``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any cached per-link randomness (new channel realisation).

        Callers that reset a model mid-run must also call
        :meth:`repro.phy.link.LinkBudget.invalidate` on any budget built
        over it, or memoized link qualities keep the old realisation.
        """

    @property
    def time_varying(self) -> bool:
        """True when the loss for a fixed position pair can change over
        simulated time (e.g. block fading).  Disables position-keyed
        memoization in :class:`~repro.phy.link.LinkBudget`."""
        return False

    @property
    def reciprocal(self) -> bool:
        """True when ``loss_db(a, b) == loss_db(b, a)`` exactly for every
        position pair.  Lets :class:`~repro.phy.link.LinkBudget` fold both
        directions of a link into one memo entry.  Defaults to False so an
        asymmetric custom model is never folded by accident; the built-in
        distance-based models override it."""
        return False

    @property
    def order_sensitive(self) -> bool:
        """True when the loss for a link is drawn lazily from a *shared*
        RNG stream, so the set/order of first evaluations changes the
        realisation (frozen shadowing).  Disables the medium's
        reachability culling, which would evaluate links in a different
        order than the per-frame resolution loop does."""
        return False


class FreeSpacePathLoss(PathLossModel):
    """Friis free-space path loss.

    ``L = 20 log10(d_km) + 20 log10(f_MHz) + 32.44``; a floor of 1 m is
    applied so co-located nodes do not produce -inf.
    """

    MIN_DISTANCE_M = 1.0

    def loss_db(self, tx: Position, rx: Position, frequency_mhz: float) -> float:
        d_km = max(distance(tx, rx), self.MIN_DISTANCE_M) / 1000.0
        return 20.0 * _log10(d_km) + 20.0 * _log10(frequency_mhz) + 32.44

    @property
    def reciprocal(self) -> bool:
        return True


class LogDistancePathLoss(PathLossModel):
    """Log-distance path loss with optional frozen log-normal shadowing.

    ``L(d) = L0 + 10 n log10(d / d0) + X_sigma`` where ``X_sigma`` is a
    zero-mean Gaussian (dB) drawn once per unordered link and cached, so
    the channel is reciprocal and static — matching the quasi-static
    building deployment of the demo.

    Defaults (``L0=127.41 dB at d0=40 m, n=2.08``) are the Petäjäjärvi et
    al. measurement fit for 868 MHz LoRa widely used by LoRaSim-derived
    simulators.
    """

    def __init__(
        self,
        *,
        exponent: float = 2.08,
        reference_distance_m: float = 40.0,
        reference_loss_db: float = 127.41,
        shadowing_sigma_db: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if exponent <= 0:
            raise ValueError(f"path-loss exponent must be positive, got {exponent}")
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing sigma must be >= 0")
        if shadowing_sigma_db > 0 and rng is None:
            raise ValueError("shadowing requires an RNG stream for reproducibility")
        self.exponent = exponent
        self.reference_distance_m = reference_distance_m
        self.reference_loss_db = reference_loss_db
        self.shadowing_sigma_db = shadowing_sigma_db
        self._rng = rng
        self._shadowing_cache: Dict[Tuple[Position, Position], float] = {}

    def loss_db(self, tx: Position, rx: Position, frequency_mhz: float) -> float:
        d = _hypot(tx[0] - rx[0], tx[1] - rx[1])  # inlined distance()
        if d < 1.0:
            d = 1.0
        loss = self.reference_loss_db + 10.0 * self.exponent * _log10(
            d / self.reference_distance_m
        )
        if self.shadowing_sigma_db == 0.0:
            return loss
        return loss + self._shadowing(tx, rx)

    def _shadowing(self, tx: Position, rx: Position) -> float:
        if self.shadowing_sigma_db == 0.0:
            return 0.0
        key = (tx, rx) if tx <= rx else (rx, tx)
        cached = self._shadowing_cache.get(key)
        if cached is None:
            assert self._rng is not None
            cached = self._rng.gauss(0.0, self.shadowing_sigma_db)
            self._shadowing_cache[key] = cached
        return cached

    def reset(self) -> None:
        self._shadowing_cache.clear()

    @property
    def order_sensitive(self) -> bool:
        return self.shadowing_sigma_db > 0.0

    @property
    def reciprocal(self) -> bool:
        # The deterministic term depends only on |tx - rx|; the shadowing
        # draw is keyed on the unordered pair, so both directions see the
        # same realisation.
        return True


class MultiWallPathLoss(PathLossModel):
    """Indoor model: log-distance plus a fixed penalty per intervening wall.

    Walls are axis-aligned segments supplied as ``((x1, y1), (x2, y2))``
    pairs; the loss adds ``wall_loss_db`` for every wall the direct path
    crosses.  This captures the demo's "nodes on different floors/corridors
    can't hear each other directly" structure with a handful of segments.
    """

    def __init__(
        self,
        walls: list[tuple[Position, Position]],
        *,
        wall_loss_db: float = 8.0,
        exponent: float = 2.0,
        reference_loss_db: float = 40.0,
        reference_distance_m: float = 1.0,
    ) -> None:
        if wall_loss_db < 0:
            raise ValueError("wall loss must be >= 0")
        self.walls = list(walls)
        self.wall_loss_db = wall_loss_db
        self._base = LogDistancePathLoss(
            exponent=exponent,
            reference_distance_m=reference_distance_m,
            reference_loss_db=reference_loss_db,
        )

    def loss_db(self, tx: Position, rx: Position, frequency_mhz: float) -> float:
        crossings = sum(1 for wall in self.walls if _segments_intersect(tx, rx, *wall))
        return self._base.loss_db(tx, rx, frequency_mhz) + crossings * self.wall_loss_db

    def reset(self) -> None:
        self._base.reset()

    @property
    def reciprocal(self) -> bool:
        # Wall crossings and the log-distance base are both symmetric in
        # the segment endpoints.
        return True


def _orientation(p: Position, q: Position, r: Position) -> int:
    """0 collinear, 1 clockwise, 2 counterclockwise."""
    val = (q[1] - p[1]) * (r[0] - q[0]) - (q[0] - p[0]) * (r[1] - q[1])
    if abs(val) < 1e-12:
        return 0
    return 1 if val > 0 else 2


def _on_segment(p: Position, q: Position, r: Position) -> bool:
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def _segments_intersect(p1: Position, q1: Position, p2: Position, q2: Position) -> bool:
    """Whether segment p1-q1 intersects segment p2-q2 (inclusive)."""
    o1 = _orientation(p1, q1, p2)
    o2 = _orientation(p1, q1, q2)
    o3 = _orientation(p2, q2, p1)
    o4 = _orientation(p2, q2, q1)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, q2, q1):
        return True
    if o3 == 0 and _on_segment(p2, p1, q2):
        return True
    if o4 == 0 and _on_segment(p2, q1, q2):
        return True
    return False
