"""Link budget: RSSI, SNR, sensitivity, and capture margins.

Reception of a LoRa frame is decided in two steps, matching how real
SX127x receivers behave and how validated LoRa simulators model them:

1. **Sensitivity** — the received signal power must exceed the per-SF
   demodulation floor (equivalently, SNR above the per-SF SNR floor).
2. **Capture / co-channel interference** — a frame survives interference
   from an overlapping same-SF transmission if it is at least
   :data:`CAPTURE_THRESHOLD_DB` stronger (the LoRa capture effect);
   otherwise both frames are lost.  Different SFs are treated as
   quasi-orthogonal with a small inter-SF rejection margin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.phy.modulation import Bandwidth, LoRaParams, SpreadingFactor
from repro.phy.pathloss import PathLossModel, Position

#: Per-SF SNR demodulation floor in dB (SX127x datasheet, table 13).
_SNR_FLOOR_DB = {
    SpreadingFactor.SF7: -7.5,
    SpreadingFactor.SF8: -10.0,
    SpreadingFactor.SF9: -12.5,
    SpreadingFactor.SF10: -15.0,
    SpreadingFactor.SF11: -17.5,
    SpreadingFactor.SF12: -20.0,
}

#: LoRa same-SF capture threshold (dB). A frame >= 6 dB above the sum of
#: co-channel interferers is demodulated correctly (Goursaud & Gorce).
CAPTURE_THRESHOLD_DB = 6.0

#: Rejection margin for interference from a *different* SF on the same
#: channel: the interferer must be this much stronger to corrupt the frame.
INTER_SF_REJECTION_DB = 16.0

#: Receiver noise figure used for the thermal-noise floor (dB).
NOISE_FIGURE_DB = 6.0


#: Noise floor per bandwidth at the default noise figure, precomputed so
#: the reception hot path never touches ``math.log10``.
_NOISE_FLOOR_DBM: Dict[Bandwidth, float] = {
    bw: -174.0 + 10.0 * math.log10(bw.hz) + NOISE_FIGURE_DB for bw in Bandwidth
}

#: Sensitivity per (bandwidth, spreading factor) at the default noise
#: figure: noise floor + per-SF SNR demodulation floor.
_SENSITIVITY_DBM: Dict[Tuple[Bandwidth, SpreadingFactor], float] = {
    (bw, sf): _NOISE_FLOOR_DBM[bw] + _SNR_FLOOR_DB[sf]
    for bw in Bandwidth
    for sf in SpreadingFactor
}


def snr_floor_db(sf: SpreadingFactor) -> float:
    """Minimum SNR (dB) at which the SX127x demodulates a frame at ``sf``."""
    return _SNR_FLOOR_DB[sf]


def noise_floor_dbm(bandwidth: Bandwidth, *, noise_figure_db: float = NOISE_FIGURE_DB) -> float:
    """Thermal noise floor in dBm: ``-174 + 10 log10(BW) + NF``."""
    if noise_figure_db == NOISE_FIGURE_DB:
        return _NOISE_FLOOR_DBM[bandwidth]
    return -174.0 + 10.0 * math.log10(bandwidth.hz) + noise_figure_db


def sensitivity_dbm(params: LoRaParams) -> float:
    """Receiver sensitivity in dBm for the given modulation parameters."""
    return _SENSITIVITY_DBM[(params.bandwidth, params.spreading_factor)]


@dataclass(frozen=True, slots=True)
class LinkQuality:
    """Computed quality of a candidate reception."""

    rssi_dbm: float
    snr_db: float
    above_sensitivity: bool


#: Memo entries kept per LinkBudget before the cache is wholesale cleared
#: (static topologies stay far below this; mobility runs would otherwise
#: grow without bound).
_LINK_CACHE_MAX = 65_536


class LinkBudget:
    """Computes received power and demodulation feasibility over a
    :class:`~repro.phy.pathloss.PathLossModel`.

    Antenna gains default to 0 dBi (the demo's PCB antennas); a systematic
    cable/connector loss can be folded into ``fixed_loss_db``.

    Evaluations are memoized per (tx position, rx position, params): for
    the static topologies of the paper's experiments the same few hundred
    links are evaluated thousands of times per simulated hour, so the
    pathloss model runs once per link instead of once per frame.  The memo
    is disabled automatically for time-varying channels (block fading) and
    can be dropped explicitly with :meth:`invalidate` — the mobility layer
    does so whenever a node moves.  Mutating the public gain/loss
    attributes mid-run also requires an :meth:`invalidate` call.
    """

    def __init__(
        self,
        pathloss: PathLossModel,
        *,
        tx_antenna_gain_dbi: float = 0.0,
        rx_antenna_gain_dbi: float = 0.0,
        fixed_loss_db: float = 0.0,
    ) -> None:
        self.pathloss = pathloss
        self.tx_antenna_gain_dbi = tx_antenna_gain_dbi
        self.rx_antenna_gain_dbi = rx_antenna_gain_dbi
        self.fixed_loss_db = fixed_loss_db
        #: Memoization switch; auto-off for time-varying channels.  Tests
        #: flip it to compare cached vs uncached runs.
        self.cache_enabled: bool = not pathloss.time_varying
        # Reciprocal pathloss + equal antenna gains means quality(a, b) is
        # bit-identical to quality(b, a): fold both directions into one
        # memo slot.  Recomputed by invalidate() in case the public gain
        # attributes were edited (the documented mutation protocol).
        self._symmetric: bool = (
            pathloss.reciprocal and tx_antenna_gain_dbi == rx_antenna_gain_dbi
        )
        # Keyed by (tx_pos, rx_pos, id(params)); _params_refs pins each
        # params object so its id() cannot be recycled while cached.
        self._quality_cache: Dict[tuple, LinkQuality] = {}
        self._params_refs: Dict[int, LoRaParams] = {}
        # id(params) -> (params, noise_floor_dbm, snr_floor_db): enum-keyed
        # table lookups cost a Python-level Enum.__hash__ each, so resolve
        # them once per params object (the pinned params ref keeps id()
        # stable).  Survives invalidate() — floors depend only on params.
        self._floor_cache: Dict[int, tuple] = {}

    @property
    def supports_reachability_cache(self) -> bool:
        """Whether per-sender reachable-listener sets may be precomputed:
        requires a loss that is both time-invariant and insensitive to the
        order links are first evaluated in."""
        return not (self.pathloss.time_varying or self.pathloss.order_sensitive)

    def invalidate(self) -> None:
        """Drop every memoized link quality.

        Call after anything that changes the channel realisation for an
        existing position pair: ``pathloss.reset()``, a new shadowing
        draw, or edits to the gain/loss attributes.  (Node movement keys
        into fresh cache slots by itself, but the mobility layer calls
        this anyway to keep the cache from accumulating stale positions.)
        """
        self._quality_cache.clear()
        self._params_refs.clear()
        self._symmetric = (
            self.pathloss.reciprocal
            and self.tx_antenna_gain_dbi == self.rx_antenna_gain_dbi
        )

    def received_power_dbm(
        self, tx_pos: Position, rx_pos: Position, params: LoRaParams
    ) -> float:
        """RSSI (dBm) at ``rx_pos`` for a transmission from ``tx_pos``."""
        if self.cache_enabled:
            return self.evaluate(tx_pos, rx_pos, params).rssi_dbm
        return self._compute_rssi(tx_pos, rx_pos, params)

    def _compute_rssi(self, tx_pos: Position, rx_pos: Position, params: LoRaParams) -> float:
        loss = self.pathloss.loss_db(tx_pos, rx_pos, params.frequency_mhz)
        return (
            params.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.fixed_loss_db
            - loss
        )

    def evaluate(self, tx_pos: Position, rx_pos: Position, params: LoRaParams) -> LinkQuality:
        """Full link evaluation: RSSI, SNR against thermal noise, and
        whether the frame clears the demodulation floor."""
        if not self.cache_enabled:
            return self._compute_quality(tx_pos, rx_pos, params)
        cache = self._quality_cache
        if self._symmetric and rx_pos < tx_pos:
            key = (rx_pos, tx_pos, id(params))
        else:
            key = (tx_pos, rx_pos, id(params))
        quality = cache.get(key)
        if quality is None:
            if len(cache) >= _LINK_CACHE_MAX:
                self.invalidate()
            self._params_refs[id(params)] = params
            quality = self._compute_quality(tx_pos, rx_pos, params)
            cache[key] = quality
        return quality

    def _compute_quality(
        self, tx_pos: Position, rx_pos: Position, params: LoRaParams
    ) -> LinkQuality:
        # Inlined _compute_rssi: this is the memo-miss path, so every new
        # link pair pays it once.
        rssi = (
            params.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.fixed_loss_db
            - self.pathloss.loss_db(tx_pos, rx_pos, params.frequency_mhz)
        )
        floors = self._floor_cache.get(id(params))
        if floors is None or floors[0] is not params:
            floors = self._floor_cache[id(params)] = (
                params,
                _NOISE_FLOOR_DBM[params.bandwidth],
                _SNR_FLOOR_DB[params.spreading_factor],
            )
        snr = rssi - floors[1]
        return LinkQuality(
            rssi_dbm=rssi,
            snr_db=snr,
            above_sensitivity=snr >= floors[2],
        )

    def in_range(self, tx_pos: Position, rx_pos: Position, params: LoRaParams) -> bool:
        """Convenience: can a frame at these parameters be heard at all?"""
        return self.evaluate(tx_pos, rx_pos, params).above_sensitivity


def survives_interference(
    signal_dbm: float,
    signal_sf: SpreadingFactor,
    interferer_dbm: float,
    interferer_sf: SpreadingFactor,
) -> bool:
    """Whether a frame survives one overlapping interferer.

    Same-SF: capture effect with :data:`CAPTURE_THRESHOLD_DB` margin.
    Different-SF: quasi-orthogonal; only a much stronger interferer
    (>= :data:`INTER_SF_REJECTION_DB` above the signal) corrupts it.
    """
    if signal_sf == interferer_sf:
        return signal_dbm - interferer_dbm >= CAPTURE_THRESHOLD_DB
    return interferer_dbm - signal_dbm < INTER_SF_REJECTION_DB
