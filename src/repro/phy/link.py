"""Link budget: RSSI, SNR, sensitivity, and capture margins.

Reception of a LoRa frame is decided in two steps, matching how real
SX127x receivers behave and how validated LoRa simulators model them:

1. **Sensitivity** — the received signal power must exceed the per-SF
   demodulation floor (equivalently, SNR above the per-SF SNR floor).
2. **Capture / co-channel interference** — a frame survives interference
   from an overlapping same-SF transmission if it is at least
   :data:`CAPTURE_THRESHOLD_DB` stronger (the LoRa capture effect);
   otherwise both frames are lost.  Different SFs are treated as
   quasi-orthogonal with a small inter-SF rejection margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.phy.modulation import Bandwidth, LoRaParams, SpreadingFactor
from repro.phy.pathloss import PathLossModel, Position

#: Per-SF SNR demodulation floor in dB (SX127x datasheet, table 13).
_SNR_FLOOR_DB = {
    SpreadingFactor.SF7: -7.5,
    SpreadingFactor.SF8: -10.0,
    SpreadingFactor.SF9: -12.5,
    SpreadingFactor.SF10: -15.0,
    SpreadingFactor.SF11: -17.5,
    SpreadingFactor.SF12: -20.0,
}

#: LoRa same-SF capture threshold (dB). A frame >= 6 dB above the sum of
#: co-channel interferers is demodulated correctly (Goursaud & Gorce).
CAPTURE_THRESHOLD_DB = 6.0

#: Rejection margin for interference from a *different* SF on the same
#: channel: the interferer must be this much stronger to corrupt the frame.
INTER_SF_REJECTION_DB = 16.0

#: Receiver noise figure used for the thermal-noise floor (dB).
NOISE_FIGURE_DB = 6.0


def snr_floor_db(sf: SpreadingFactor) -> float:
    """Minimum SNR (dB) at which the SX127x demodulates a frame at ``sf``."""
    return _SNR_FLOOR_DB[sf]


def noise_floor_dbm(bandwidth: Bandwidth, *, noise_figure_db: float = NOISE_FIGURE_DB) -> float:
    """Thermal noise floor in dBm: ``-174 + 10 log10(BW) + NF``."""
    import math

    return -174.0 + 10.0 * math.log10(bandwidth.hz) + noise_figure_db


def sensitivity_dbm(params: LoRaParams) -> float:
    """Receiver sensitivity in dBm for the given modulation parameters."""
    return noise_floor_dbm(params.bandwidth) + snr_floor_db(params.spreading_factor)


@dataclass(frozen=True)
class LinkQuality:
    """Computed quality of a candidate reception."""

    rssi_dbm: float
    snr_db: float
    above_sensitivity: bool


class LinkBudget:
    """Computes received power and demodulation feasibility over a
    :class:`~repro.phy.pathloss.PathLossModel`.

    Antenna gains default to 0 dBi (the demo's PCB antennas); a systematic
    cable/connector loss can be folded into ``fixed_loss_db``.
    """

    def __init__(
        self,
        pathloss: PathLossModel,
        *,
        tx_antenna_gain_dbi: float = 0.0,
        rx_antenna_gain_dbi: float = 0.0,
        fixed_loss_db: float = 0.0,
    ) -> None:
        self.pathloss = pathloss
        self.tx_antenna_gain_dbi = tx_antenna_gain_dbi
        self.rx_antenna_gain_dbi = rx_antenna_gain_dbi
        self.fixed_loss_db = fixed_loss_db

    def received_power_dbm(
        self, tx_pos: Position, rx_pos: Position, params: LoRaParams
    ) -> float:
        """RSSI (dBm) at ``rx_pos`` for a transmission from ``tx_pos``."""
        loss = self.pathloss.loss_db(tx_pos, rx_pos, params.frequency_mhz)
        return (
            params.tx_power_dbm
            + self.tx_antenna_gain_dbi
            + self.rx_antenna_gain_dbi
            - self.fixed_loss_db
            - loss
        )

    def evaluate(self, tx_pos: Position, rx_pos: Position, params: LoRaParams) -> LinkQuality:
        """Full link evaluation: RSSI, SNR against thermal noise, and
        whether the frame clears the demodulation floor."""
        rssi = self.received_power_dbm(tx_pos, rx_pos, params)
        snr = rssi - noise_floor_dbm(params.bandwidth)
        return LinkQuality(
            rssi_dbm=rssi,
            snr_db=snr,
            above_sensitivity=snr >= snr_floor_db(params.spreading_factor),
        )

    def in_range(self, tx_pos: Position, rx_pos: Position, params: LoRaParams) -> bool:
        """Convenience: can a frame at these parameters be heard at all?"""
        return self.evaluate(tx_pos, rx_pos, params).above_sensitivity


def survives_interference(
    signal_dbm: float,
    signal_sf: SpreadingFactor,
    interferer_dbm: float,
    interferer_sf: SpreadingFactor,
) -> bool:
    """Whether a frame survives one overlapping interferer.

    Same-SF: capture effect with :data:`CAPTURE_THRESHOLD_DB` margin.
    Different-SF: quasi-orthogonal; only a much stronger interferer
    (>= :data:`INTER_SF_REJECTION_DB` above the signal) corrupts it.
    """
    if signal_sf == interferer_sf:
        return signal_dbm - interferer_dbm >= CAPTURE_THRESHOLD_DB
    return interferer_dbm - signal_dbm < INTER_SF_REJECTION_DB
