"""LoRa physical-layer models.

This package substitutes for the Semtech SX127x radio hardware the paper's
testbed used.  It provides:

* :mod:`repro.phy.modulation` — LoRa modulation parameter types (SF, BW,
  CR) and validation,
* :mod:`repro.phy.airtime` — the Semtech time-on-air formula (AN1200.22),
* :mod:`repro.phy.pathloss` — propagation models (free space, log-distance
  with shadowing, indoor multi-wall),
* :mod:`repro.phy.link` — link budget: RSSI/SNR at a receiver, per-SF
  demodulation floors, sensitivity, capture-effect margins,
* :mod:`repro.phy.regions` — regional regulatory parameters (EU868 duty
  cycle, dwell time) and a per-node duty-cycle accountant.
"""

from repro.phy.modulation import (
    Bandwidth,
    CodingRate,
    LoRaParams,
    SpreadingFactor,
)
from repro.phy.airtime import (
    payload_symbols,
    preamble_duration,
    symbol_duration,
    time_on_air,
)
from repro.phy.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    PathLossModel,
)
from repro.phy.link import (
    CAPTURE_THRESHOLD_DB,
    LinkBudget,
    noise_floor_dbm,
    sensitivity_dbm,
    snr_floor_db,
)
from repro.phy.regions import DutyCycleAccountant, Region, EU868, US915
from repro.phy.fading import BlockFadingPathLoss

__all__ = [
    "SpreadingFactor",
    "Bandwidth",
    "CodingRate",
    "LoRaParams",
    "symbol_duration",
    "preamble_duration",
    "payload_symbols",
    "time_on_air",
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "MultiWallPathLoss",
    "LinkBudget",
    "noise_floor_dbm",
    "sensitivity_dbm",
    "snr_floor_db",
    "CAPTURE_THRESHOLD_DB",
    "DutyCycleAccountant",
    "Region",
    "EU868",
    "US915",
    "BlockFadingPathLoss",
]
