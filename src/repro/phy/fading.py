"""Time-varying channel: block fading on top of any path-loss model.

The static models in :mod:`repro.phy.pathloss` freeze each link's gain
for a whole run — right for the demo's quasi-static building, but real
LoRa links breathe: people move, doors close, multipath drifts.  The
standard abstraction is **block fading**: the channel holds a fading
state for one coherence time, then redraws independently.

:class:`BlockFadingPathLoss` wraps a base model and adds a zero-mean
Gaussian (dB) per (link, time-block), reading the current block from the
simulation clock.  Draws are deterministic per (master seed, link,
block index), so runs stay reproducible and the channel is reciprocal
within a block.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Tuple

from repro.phy.pathloss import PathLossModel, Position
from repro.sim.kernel import Simulator


class BlockFadingPathLoss(PathLossModel):
    """Base path loss plus per-coherence-block log-normal fading.

    Parameters
    ----------
    base:
        The distance-dependent model to perturb.
    sim:
        Clock source for block boundaries.
    coherence_time_s:
        How long one fading realisation holds (tens of seconds for
        static nodes in an inhabited building).
    sigma_db:
        Standard deviation of the fading term in dB (2–6 dB typical).
    seed:
        Fading stream seed; independent of the base model's randomness.
    """

    def __init__(
        self,
        base: PathLossModel,
        sim: Simulator,
        *,
        coherence_time_s: float = 30.0,
        sigma_db: float = 3.0,
        seed: int = 0,
    ) -> None:
        if coherence_time_s <= 0:
            raise ValueError("coherence_time_s must be positive")
        if sigma_db < 0:
            raise ValueError("sigma_db must be >= 0")
        self.base = base
        self._sim = sim
        self.coherence_time_s = coherence_time_s
        self.sigma_db = sigma_db
        self._seed = seed
        # Tiny cache for the current block (links are re-evaluated many
        # times per frame exchange within one block).
        self._cache: dict[Tuple[Position, Position, int], float] = {}
        self._cache_block = -1

    def loss_db(self, tx: Position, rx: Position, frequency_mhz: float) -> float:
        return self.base.loss_db(tx, rx, frequency_mhz) + self.fading_db(tx, rx)

    def fading_db(self, tx: Position, rx: Position) -> float:
        """The fading term for this link in the current block."""
        if self.sigma_db == 0.0:
            return 0.0
        block = self.current_block()
        if block != self._cache_block:
            self._cache.clear()
            self._cache_block = block
        link = (tx, rx) if tx <= rx else (rx, tx)
        key = (link[0], link[1], block)
        value = self._cache.get(key)
        if value is None:
            value = self._draw(link, block)
            self._cache[key] = value
        return value

    def current_block(self) -> int:
        """Index of the coherence block containing the current instant."""
        return int(self._sim.now // self.coherence_time_s)

    def _draw(self, link: Tuple[Position, Position], block: int) -> float:
        """Deterministic Gaussian draw for (seed, link, block).

        Hash-derived seeding keeps the draw independent of evaluation
        order — re-running with more listeners attached does not perturb
        other links' fading.
        """
        digest = hashlib.sha256(
            f"{self._seed}:{link!r}:{block}".encode()
        ).digest()
        rng = random.Random(int.from_bytes(digest[:8], "big"))
        return rng.gauss(0.0, self.sigma_db)

    def reset(self) -> None:
        self.base.reset()
        self._cache.clear()
        self._cache_block = -1

    @property
    def time_varying(self) -> bool:
        return self.sigma_db > 0.0 or self.base.time_varying

    @property
    def order_sensitive(self) -> bool:
        # Fading draws are hash-derived (order-independent); only the base
        # model can make the realisation depend on evaluation order.
        return self.base.order_sensitive
