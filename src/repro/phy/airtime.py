"""LoRa time-on-air computation (Semtech AN1200.22 formula).

Time-on-air drives everything in a LoRa mesh: collision probability,
duty-cycle budget, hello-packet overhead, and end-to-end latency.  This
module implements the exact formula from the SX127x datasheet /
AN1200.22, the same one the RadioLib backend used by LoRaMesher applies.
"""

from __future__ import annotations

import math

from repro.phy.modulation import LoRaParams


def symbol_duration(params: LoRaParams) -> float:
    """Duration of one LoRa symbol in seconds (``2**SF / BW``)."""
    return params.symbol_time


def preamble_duration(params: LoRaParams) -> float:
    """Duration of the preamble in seconds.

    The radio transmits ``n_preamble`` programmed symbols plus 4.25 symbols
    of sync word / start-of-frame delimiter.
    """
    return (params.preamble_symbols + 4.25) * params.symbol_time


def payload_symbols(payload_bytes: int, params: LoRaParams) -> int:
    """Number of payload symbols for ``payload_bytes`` of PHY payload.

    Implements ``ceil(max(...)/4(SF-2DE)) * (CR+4)`` from AN1200.22 with
    the +8 base symbols.  The explicit header adds 20 bits (``H=0``) and
    the CRC adds 16 bits when enabled.
    """
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    sf = int(params.spreading_factor)
    de = 1 if params.ldro_enabled else 0
    h = 0 if params.explicit_header else 1
    crc = 1 if params.crc_enabled else 0
    numerator = 8 * payload_bytes - 4 * sf + 28 + 16 * crc - 20 * h
    denominator = 4 * (sf - 2 * de)
    extra = max(math.ceil(numerator / denominator), 0) * (params.coding_rate.denominator)
    return 8 + extra


def payload_duration(payload_bytes: int, params: LoRaParams) -> float:
    """Duration of the payload portion in seconds."""
    return payload_symbols(payload_bytes, params) * params.symbol_time


#: Memo for :func:`time_on_air`, keyed by (payload length, params id).
#: The formula is pure and params objects are frozen, so entries never go
#: stale; ``_TOA_PARAMS`` pins each params object so ids are not recycled.
_TOA_CACHE: dict = {}
_TOA_PARAMS: dict = {}
_TOA_CACHE_MAX = 16_384


def time_on_air(payload_bytes: int, params: LoRaParams) -> float:
    """Total frame time-on-air in seconds: preamble + payload.

    Memoized: a mesh computes the ToA of the same (size, params) pairs on
    every transmit, duty-cycle check, and airtime report.
    """
    key = (payload_bytes, id(params))
    toa = _TOA_CACHE.get(key)
    if toa is None:
        if len(_TOA_CACHE) >= _TOA_CACHE_MAX:
            _TOA_CACHE.clear()
            _TOA_PARAMS.clear()
        _TOA_PARAMS[id(params)] = params
        toa = preamble_duration(params) + payload_duration(payload_bytes, params)
        _TOA_CACHE[key] = toa
    return toa


def max_payload_for_airtime(budget_s: float, params: LoRaParams, *, limit: int = 255) -> int:
    """Largest PHY payload (bytes, <= ``limit``) whose ToA fits ``budget_s``.

    Used by the mesher to size fragments under regional dwell-time limits.
    Returns -1 when even an empty frame does not fit.
    """
    if time_on_air(0, params) > budget_s:
        return -1
    lo, hi = 0, limit
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if time_on_air(mid, params) <= budget_s:
            lo = mid
        else:
            hi = mid - 1
    return lo


def effective_bitrate(payload_bytes: int, params: LoRaParams) -> float:
    """Application-visible bitrate (bits/s) for a frame of this size,
    accounting for preamble and framing overhead."""
    toa = time_on_air(payload_bytes, params)
    if toa <= 0:
        raise ValueError("time on air must be positive")
    return 8 * payload_bytes / toa
