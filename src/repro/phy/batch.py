"""Vectorized batch PHY engine.

Scaling the simulation past a few dozen nodes turns every topology-level
computation — reachable-set construction, connectivity graphs, SF
planning — into an O(N²) Python loop over scalar
:meth:`~repro.phy.link.LinkBudget.evaluate` calls.  This module computes
the same quantities as numpy matrices in one shot: RSSI/SNR/link-margin
over (tx positions × rx positions), with per-SF noise and demodulation
floors broadcast across the matrix.

**Bit-exactness contract.**  Every matrix cell equals the scalar
``LinkBudget.evaluate`` result for that pair *exactly* (no tolerance):
the scalar models route their transcendental ops through numpy scalar
kernels (see ``repro.phy.pathloss._log10``/``_hypot``), which numpy
guarantees agree with its array kernels, and every other op is IEEE
+/-/*// evaluated in the same order as the scalar code.  The property
test ``tests/phy/test_batch_phy.py`` asserts exact equality over random
placements, params, and every built-in model.

Batch support is per path-loss model, registered by exact type so a
subclass with an overridden ``loss_db`` is never silently vectorized
with the parent's formula.  Models that are ``time_varying`` or
``order_sensitive`` (frozen shadowing drawn lazily from a shared RNG
stream) are excluded — exactly the models the medium's reachability
culling refuses, and for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Type

from repro.phy.link import (
    LinkBudget,
    _NOISE_FLOOR_DBM,
    _SNR_FLOOR_DB,
    sensitivity_dbm,
)
from repro.phy.modulation import LoRaParams
from repro.phy.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    MultiWallPathLoss,
    PathLossModel,
    Position,
)

try:  # numpy is a declared dependency, but degrade gracefully without it
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


# ----------------------------------------------------------------------
# Position arrays
# ----------------------------------------------------------------------
def positions_array(positions: Sequence[Position]) -> "np.ndarray":
    """``(n, 2)`` float64 array from a sequence of ``(x, y)`` tuples."""
    return np.asarray(positions, dtype=np.float64).reshape(len(positions), 2)


def _distance_matrix(txs: "np.ndarray", rxs: "np.ndarray") -> "np.ndarray":
    """``(n, m)`` pairwise distances; bit-identical to the scalar models'
    per-pair ``_hypot(dx, dy)``."""
    dx = txs[:, 0][:, None] - rxs[:, 0][None, :]
    dy = txs[:, 1][:, None] - rxs[:, 1][None, :]
    return np.hypot(dx, dy)


# ----------------------------------------------------------------------
# Per-model batch loss kernels (registered by exact type)
# ----------------------------------------------------------------------
def _freespace_loss(
    model: FreeSpacePathLoss, txs: "np.ndarray", rxs: "np.ndarray", frequency_mhz: float
) -> "np.ndarray":
    d = _distance_matrix(txs, rxs)
    np.maximum(d, model.MIN_DISTANCE_M, out=d)
    d /= 1000.0
    # Scalar op order: (20*log10(d_km) + 20*log10(f)) + 32.44.
    f_term = 20.0 * float(np.log10(frequency_mhz))
    return (20.0 * np.log10(d) + f_term) + 32.44


def _freespace_max_range(
    model: FreeSpacePathLoss, max_loss_db: float, frequency_mhz: float
) -> float:
    f_term = 20.0 * float(np.log10(frequency_mhz))
    return 1000.0 * 10.0 ** ((max_loss_db - 32.44 - f_term) / 20.0)


def _logdistance_loss(
    model: LogDistancePathLoss, txs: "np.ndarray", rxs: "np.ndarray", frequency_mhz: float
) -> "np.ndarray":
    # sigma > 0 is order_sensitive and never reaches this kernel.
    d = _distance_matrix(txs, rxs)
    np.maximum(d, 1.0, out=d)
    k = 10.0 * model.exponent
    return model.reference_loss_db + k * np.log10(d / model.reference_distance_m)


def _logdistance_max_range(
    model: LogDistancePathLoss, max_loss_db: float, frequency_mhz: float
) -> float:
    k = 10.0 * model.exponent
    return model.reference_distance_m * 10.0 ** ((max_loss_db - model.reference_loss_db) / k)


def _wall_crossed(
    txs: "np.ndarray", rxs: "np.ndarray", wall: Tuple[Position, Position]
) -> "np.ndarray":
    """Boolean ``(n, m)`` matrix of direct paths crossing one wall.

    Vectorized transcription of ``pathloss._segments_intersect`` (same
    orientation epsilon, same inclusive endpoint handling) so crossing
    counts match the scalar model exactly.
    """
    (wx1, wy1), (wx2, wy2) = wall
    p1x = txs[:, 0][:, None]
    p1y = txs[:, 1][:, None]
    q1x = rxs[:, 0][None, :]
    q1y = rxs[:, 1][None, :]

    def orient(px, py, qx, qy, rx, ry):
        val = (qy - py) * (rx - qx) - (qx - px) * (ry - qy)
        return np.where(np.abs(val) < 1e-12, 0, np.where(val > 0, 1, 2))

    def on_segment(px, py, qx, qy, rx, ry):
        return (
            (np.minimum(px, rx) <= qx)
            & (qx <= np.maximum(px, rx))
            & (np.minimum(py, ry) <= qy)
            & (qy <= np.maximum(py, ry))
        )

    o1 = orient(p1x, p1y, q1x, q1y, wx1, wy1)
    o2 = orient(p1x, p1y, q1x, q1y, wx2, wy2)
    o3 = orient(wx1, wy1, wx2, wy2, p1x, p1y)
    o4 = orient(wx1, wy1, wx2, wy2, q1x, q1y)
    crossed = (o1 != o2) & (o3 != o4)
    crossed |= (o1 == 0) & on_segment(p1x, p1y, wx1, wy1, q1x, q1y)
    crossed |= (o2 == 0) & on_segment(p1x, p1y, wx2, wy2, q1x, q1y)
    crossed |= (o3 == 0) & on_segment(wx1, wy1, p1x, p1y, wx2, wy2)
    crossed |= (o4 == 0) & on_segment(wx1, wy1, q1x, q1y, wx2, wy2)
    return crossed


def _multiwall_loss(
    model: MultiWallPathLoss, txs: "np.ndarray", rxs: "np.ndarray", frequency_mhz: float
) -> "np.ndarray":
    base = _logdistance_loss(model._base, txs, rxs, frequency_mhz)
    crossings = np.zeros(base.shape, dtype=np.float64)
    for wall in model.walls:
        crossings += _wall_crossed(txs, rxs, wall)
    return base + crossings * model.wall_loss_db


def _multiwall_max_range(
    model: MultiWallPathLoss, max_loss_db: float, frequency_mhz: float
) -> float:
    # Walls only add loss, so the wall-free base bounds the range.
    return _logdistance_max_range(model._base, max_loss_db, frequency_mhz)


_LossKernel = Callable[[PathLossModel, "np.ndarray", "np.ndarray", float], "np.ndarray"]
_RangeKernel = Callable[[PathLossModel, float, float], float]

#: Exact model type -> (batch loss kernel, max-range inverse).
_BATCH_KERNELS: Dict[Type[PathLossModel], Tuple[_LossKernel, _RangeKernel]] = {
    FreeSpacePathLoss: (_freespace_loss, _freespace_max_range),
    LogDistancePathLoss: (_logdistance_loss, _logdistance_max_range),
    MultiWallPathLoss: (_multiwall_loss, _multiwall_max_range),
}


def register_batch_kernels(
    model_type: Type[PathLossModel], loss: _LossKernel, max_range: _RangeKernel
) -> None:
    """Register batch kernels for a custom path-loss model type.

    ``loss`` must be bit-identical to the model's scalar ``loss_db`` (use
    numpy ops in the scalar op order); ``max_range(model, max_loss_db,
    frequency_mhz)`` must return a distance beyond which ``loss_db``
    always exceeds ``max_loss_db``.
    """
    _BATCH_KERNELS[model_type] = (loss, max_range)


def supports_batch_model(model: PathLossModel) -> bool:
    """Whether ``model`` has a registered batch kernel it is safe to use:
    exact type registered, loss static in time, and realisation
    independent of evaluation order."""
    return (
        HAVE_NUMPY
        and type(model) in _BATCH_KERNELS
        and not model.time_varying
        and not model.order_sensitive
    )


def supports_batch(link_budget: LinkBudget) -> bool:
    """Whether the batch engine can stand in for scalar evaluation."""
    return supports_batch_model(link_budget.pathloss)


# ----------------------------------------------------------------------
# Link matrices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkMatrix:
    """Batched link qualities over (tx positions × rx positions).

    Cell ``[i, j]`` equals the scalar ``LinkBudget.evaluate(tx[i], rx[j],
    params)`` result bit-for-bit; ``margin_db`` additionally reports the
    SNR headroom above the per-SF demodulation floor.
    """

    rssi_dbm: "np.ndarray"  # (n, m) float64
    snr_db: "np.ndarray"  # (n, m) float64
    margin_db: "np.ndarray"  # (n, m) float64, snr - per-SF floor
    above_sensitivity: "np.ndarray"  # (n, m) bool


def _tx_base_dbm(link_budget: LinkBudget, params: LoRaParams) -> float:
    """EIRP minus fixed losses, associated exactly like the scalar
    ``LinkBudget._compute_quality``."""
    return (
        (params.tx_power_dbm + link_budget.tx_antenna_gain_dbi)
        + link_budget.rx_antenna_gain_dbi
    ) - link_budget.fixed_loss_db


def batch_loss_db(
    model: PathLossModel,
    txs: "np.ndarray",
    rxs: "np.ndarray",
    frequency_mhz: float,
) -> "np.ndarray":
    """``(n, m)`` path-loss matrix via the model's registered kernel."""
    kernel, _ = _BATCH_KERNELS[type(model)]
    return kernel(model, txs, rxs, frequency_mhz)


def link_matrices(
    link_budget: LinkBudget,
    tx_positions: Sequence[Position],
    rx_positions: Sequence[Position],
    params: LoRaParams,
) -> LinkMatrix:
    """RSSI/SNR/margin matrices for every (tx, rx) position pair.

    Caller must ensure :func:`supports_batch` holds; kernels for
    unregistered models raise ``KeyError``.
    """
    txs = positions_array(tx_positions)
    rxs = positions_array(rx_positions)
    loss = batch_loss_db(link_budget.pathloss, txs, rxs, params.frequency_mhz)
    rssi = _tx_base_dbm(link_budget, params) - loss
    noise = _NOISE_FLOOR_DBM[params.bandwidth]
    floor = _SNR_FLOOR_DB[params.spreading_factor]
    snr = rssi - noise
    margin = snr - floor
    return LinkMatrix(
        rssi_dbm=rssi,
        snr_db=snr,
        margin_db=margin,
        above_sensitivity=snr >= floor,
    )


def rssi_matrix(
    link_budget: LinkBudget,
    tx_positions: Sequence[Position],
    rx_positions: Sequence[Position],
    params: LoRaParams,
) -> "np.ndarray":
    """The RSSI plane alone — interference accounting needs no SNR or
    threshold planes, and skipping them matters when the matrix is tiny
    (one call per completed transmission)."""
    txs = positions_array(tx_positions)
    rxs = positions_array(rx_positions)
    loss = batch_loss_db(link_budget.pathloss, txs, rxs, params.frequency_mhz)
    return _tx_base_dbm(link_budget, params) - loss


def above_sensitivity_matrix(
    link_budget: LinkBudget,
    tx_positions: Sequence[Position],
    rx_positions: Sequence[Position],
    params: LoRaParams,
) -> "np.ndarray":
    """Boolean reachability matrix (convenience over :func:`link_matrices`)."""
    return link_matrices(link_budget, tx_positions, rx_positions, params).above_sensitivity


#: Relative + absolute slack added to inverted max-range solutions so
#: float rounding in the ``10**x`` inversion can never exclude a node
#: that the exact margin test would admit.
_RANGE_SLACK_REL = 1e-9
_RANGE_SLACK_ABS = 1e-6


def max_range_m(link_budget: LinkBudget, params: LoRaParams) -> Optional[float]:
    """Distance beyond which no node can clear sensitivity, or None when
    the model's range cannot be bounded (no registered kernel).

    The bound is conservative: candidates inside it are filtered by the
    exact batched margin test, so slack only costs a few extra candidate
    evaluations, never correctness.
    """
    if not supports_batch(link_budget):
        return None
    model = link_budget.pathloss
    _, range_kernel = _BATCH_KERNELS[type(model)]
    max_loss = _tx_base_dbm(link_budget, params) - sensitivity_dbm(params)
    radius = range_kernel(model, max_loss, params.frequency_mhz)
    if radius != radius or radius == float("inf"):  # NaN / unbounded
        return None
    if radius < 0.0:
        return 0.0
    return radius * (1.0 + _RANGE_SLACK_REL) + _RANGE_SLACK_ABS
