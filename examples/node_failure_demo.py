#!/usr/bin/env python3
"""Self-healing demo: the mesh reroutes around a dead relay.

A 5-node cross topology gives the two end nodes two disjoint paths.  The
script kills the primary relay mid-run and watches the distance-vector
protocol steer traffic onto the surviving path: stale routes age out,
the next hellos teach the detour, delivery resumes.

Topology (distances in metres; SF7 range ~135 m)::

        B (120, 45)
       / \
      A   D      both A--B--D and A--C--D are two-hop paths;
       \ /       whichever relay's hello lands first carries the
        C (120,-45)    traffic until it dies

Run:  python examples/node_failure_demo.py
"""

from repro import MeshNetwork, MesherConfig
from repro.metrics import FlowRecorder, attach_recorder
from repro.net.addresses import format_address
from repro.topology.mobility import FailureSchedule
from repro.workload.traffic import PeriodicSender
import random


def main() -> None:
    positions = [
        (0.0, 0.0),  # A - source
        (120.0, 45.0),  # B - relay (detour); 128 m from A and D
        (120.0, -45.0),  # C - relay (primary or detour)
        (240.0, 0.0),  # D - destination; 240 m from A (out of range)
    ]
    # Shorter hello period & route timeout so the repair is visible in a
    # short run (the A3 benchmark sweeps these knobs properly).
    config = MesherConfig(hello_period_s=60.0, route_timeout_s=180.0, purge_period_s=20.0)
    net = MeshNetwork.from_positions(positions, seed=21, config=config)
    a, b, c, d = (net.node(addr) for addr in net.addresses)

    print("Converging ...")
    print(f"converged after {net.run_until_converged(timeout_s=3600.0):.0f} s")
    relay = net.node(a.table.next_hop(d.address))
    backup = c if relay is b else b
    print(f"{a.name} routes to {d.name} via {relay.name} (backup path via {backup.name})\n")

    recorder = FlowRecorder()
    attach_recorder(recorder, d)
    sender = PeriodicSender(
        net.sim, a.address, d.address, a.send_datagram,
        period_s=30.0, listener=recorder, rng=random.Random(1),
    )

    kill_at = net.sim.now + 600.0
    schedule = FailureSchedule(net.sim)
    schedule.fail_at(kill_at, relay)
    print(f"Relay {relay.name} will fail at t={kill_at:.0f} s. Sending a probe every 30 s ...")

    # Watch the route A->D over time.
    last_via = None
    for _ in range(120):
        net.run(for_s=30.0)
        via = a.table.next_hop(d.address)
        if via != last_via:
            name = format_address(via) if via is not None else "NO ROUTE"
            print(f"  t={net.sim.now:7.0f} s: {a.name} -> {d.name} via {name}")
            last_via = via
        if via == backup.address:
            break
    sender.stop()
    net.run(for_s=60.0)

    flow = recorder.flow(a.address, d.address)
    print(
        f"\nDelivered {flow.delivered}/{flow.sent} probes ({flow.pdr * 100:.0f}%) — "
        "the gap is the blackhole window between the relay dying and the "
        "stale route timing out."
    )
    blackhole = config.route_timeout_s + config.hello_period_s
    print(f"Worst-case repair bound: route_timeout + hello_period = {blackhole:.0f} s.")


if __name__ == "__main__":
    main()
