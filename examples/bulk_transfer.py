#!/usr/bin/env python3
"""Reliable bulk transfer: a firmware image crosses the mesh.

The paper points at "new distributed applications hosted only on tiny IoT
nodes" — the canonical one being over-the-mesh firmware/configuration
distribution.  A 6 KiB blob does not fit a LoRa frame (255 B), so
LoRaMesher fragments it into XL_DATA packets, opens the stream with SYNC,
repairs losses via LOST reports, and closes with an ACK.

The script pushes the blob across a 3-hop line, first on a clean channel
and then with 15% random frame loss injected, printing the repair cost.

Run:  python examples/bulk_transfer.py
"""

import hashlib
import random

from repro import MeshNetwork
from repro.topology import line_positions


def transfer(loss_rate: float, *, seed: int = 5) -> None:
    label = f"{loss_rate * 100:.0f}% injected frame loss" if loss_rate else "clean channel"
    print(f"\n--- Transfer with {label} ---")

    loss_rng = random.Random(seed)
    injector = (lambda tx, rx_id: loss_rng.random() < loss_rate) if loss_rate else None
    net = MeshNetwork.from_positions(line_positions(4), seed=seed, loss_injector=injector)
    if net.run_until_converged(timeout_s=7200.0) is None:
        raise SystemExit("mesh did not converge")

    source = net.node(net.addresses[0])
    target = net.node(net.addresses[-1])

    blob = random.Random(99).randbytes(6 * 1024)
    digest = hashlib.sha256(blob).hexdigest()[:16]
    print(f"{source.name} sends {len(blob)} B to {target.name} "
          f"({source.table.metric(target.address)} hops), sha256 {digest}...")

    outcome = {}
    started = net.sim.now
    source.send_reliable(
        target.address, blob, on_complete=lambda ok, why: outcome.update(ok=ok, why=why)
    )
    net.run(for_s=3600.0)

    message = target.receive()
    if not outcome.get("ok") or message is None:
        print(f"transfer FAILED: {outcome}")
        return
    elapsed = message.received_at - started
    received_digest = hashlib.sha256(message.payload).hexdigest()[:16]
    transport = source.reliable
    print(
        f"delivered {len(message.payload)} B in {elapsed:.0f} s "
        f"({8 * len(message.payload) / elapsed:.0f} bit/s goodput), sha256 {received_digest}..."
    )
    assert received_digest == digest, "payload corrupted in transit!"
    print(
        f"cost: {transport.fragments_sent} fragments sent, "
        f"{transport.retransmissions} retransmissions, "
        f"{target.reliable.losts_sent} LOST reports, "
        f"{net.total_airtime_s():.1f} s total airtime"
    )


def main() -> None:
    transfer(0.0)
    transfer(0.15)


if __name__ == "__main__":
    main()
