#!/usr/bin/env python3
"""A mobile node roams through a static mesh.

Seven static nodes form a backbone across a field; an eighth node walks
random waypoints among them while reporting to a fixed sink every 45 s.
As the walker moves, its neighbourhood changes: routes to it expire and
re-form through whichever backbone node currently hears it.

The script tracks the walker's serving next hop over time (as seen from
the sink) and its delivery ratio — multi-hop mobility working on plain
distance-vector routing, no special handover logic.

Run:  python examples/mobile_node.py
"""

import random

from repro import MeshNetwork, MesherConfig
from repro.metrics import FlowRecorder, attach_recorder
from repro.net.addresses import format_address
from repro.topology import grid_positions
from repro.topology.mobility import RandomWaypoint
from repro.workload.traffic import PeriodicSender

# Mobility breaks routes constantly, so run tighter timers than a static
# deployment would (the trade-off A3/E8 quantify).
CONFIG = MesherConfig(hello_period_s=30.0, route_timeout_s=90.0, purge_period_s=10.0)


def main() -> None:
    backbone = grid_positions(2, 4, spacing_m=110.0)  # slightly over SF7/120m grid
    start = (55.0, 55.0)
    net = MeshNetwork.from_positions(backbone + [start], config=CONFIG, seed=33)
    walker = net.nodes[-1]
    sink = net.nodes[0]
    print(f"{len(backbone)}-node backbone grid; walker {walker.name} reports to sink {sink.name}.")

    print("Converging the static mesh ...")
    print(f"converged after {net.run_until_converged(timeout_s=3600.0):.0f} s\n")

    recorder = FlowRecorder()
    attach_recorder(recorder, sink)
    sender = PeriodicSender(
        net.sim, walker.address, sink.address, walker.send_datagram,
        period_s=45.0, listener=recorder, rng=random.Random(5),
    )
    mobility = RandomWaypoint(
        net.sim, walker,
        area=(0.0, 0.0, 330.0, 110.0),
        speed_mps=1.4,  # walking pace
        pause_s=60.0,
        rng=random.Random(9),
    )
    mobility.start()

    print("Walking for 2 simulated hours; serving route (sink's view):")
    last_via = object()
    for _ in range(240):
        net.run(for_s=30.0)
        via = sink.table.next_hop(walker.address)
        if via != last_via:
            name = format_address(via) if via is not None else "NO ROUTE"
            x, y = walker.radio.position
            print(f"  t={net.sim.now:7.0f} s  walker at ({x:4.0f},{y:4.0f})  route via {name}")
            last_via = via
    sender.stop()
    mobility.stop()
    net.run(for_s=120.0)

    flow = recorder.flow(walker.address, sink.address)
    print(
        f"\nWalker completed {mobility.legs_completed} legs; "
        f"delivered {flow.delivered}/{flow.sent} reports "
        f"({flow.pdr * 100:.0f}% — gaps are route-expiry windows while moving)."
    )


if __name__ == "__main__":
    main()
