#!/usr/bin/env python3
"""Duty-cycle audit: does the mesh respect the EU868 1% rule?

LoRa in the EU 868 MHz band may occupy the shared sub-band for at most
1% of time per device.  A mesh is riskier than a star here: routers pay
airtime for *other nodes'* packets on top of their own hellos and data.

The script runs a 9-node grid for six simulated hours at two traffic
intensities and prints each node's sub-band utilisation, then shows the
pacing in action by asking one node to send far more than its budget.

Run:  python examples/duty_cycle_audit.py
"""

import random

from repro import MeshNetwork
from repro.experiments.report import print_table
from repro.topology import grid_positions
from repro.workload.traffic import PeriodicSender


def audit(period_s: float, hours: float = 6.0) -> None:
    print(f"\n--- All 8 outer nodes report to the centre every {period_s:.0f} s ---")
    net = MeshNetwork.from_positions(grid_positions(3, 3, spacing_m=100.0), seed=3)
    net.run_until_converged(timeout_s=7200.0)
    centre = net.node(net.addresses[4])
    senders = [
        PeriodicSender(
            net.sim, node.address, centre.address, node.send_datagram,
            period_s=period_s, payload_size=32, rng=random.Random(node.address),
        )
        for node in net.nodes
        if node is not centre
    ]
    net.run(for_s=hours * 3600.0)
    for sender in senders:
        sender.stop()

    rows = []
    for node in net.nodes:
        utilisation = node.duty.window_utilisation(net.sim.now)
        rows.append(
            (
                node.name,
                node.stats.frames_sent,
                node.stats.data_forwarded,
                f"{node.radio.tx_airtime_s:.1f}",
                f"{utilisation * 100:.3f}%",
                "OK" if utilisation <= node.duty.region.duty_cycle else "VIOLATION",
            )
        )
    print_table(
        ["node", "frames", "forwarded", "TX airtime (s)", "duty (last hour)", "EU868 1%"],
        rows,
    )


def pacing_demo() -> None:
    print("\n--- Pacing: one node offered ~5x its duty budget ---")
    from repro import MesherConfig

    config = MesherConfig(send_queue_capacity=512)
    net = MeshNetwork.from_positions([(0.0, 0.0), (80.0, 0.0)], seed=9, config=config)
    net.run_until_converged(timeout_s=3600.0)
    a, b = net.node(net.addresses[0]), net.node(net.addresses[1])
    # 500 datagrams of 200 B are ~180 s of SF7 airtime — five times the
    # 36 s/hour EU868 budget.  The pump must stretch the queue across
    # hours instead of bursting.
    for _ in range(500):
        a.send_datagram(b.address, bytes(200))
    net.run(for_s=2 * 3600.0)
    print(
        f"sent {a.stats.frames_sent} frames, deferred {a.stats.duty_deferrals} times, "
        f"utilisation {a.duty.window_utilisation(net.sim.now) * 100:.3f}% "
        f"(still queued: {len(a.send_queue)}, queue drops: {a.send_queue.dropped})"
    )


def main() -> None:
    audit(period_s=300.0)
    audit(period_s=60.0)
    pacing_demo()


if __name__ == "__main__":
    main()
