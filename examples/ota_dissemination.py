#!/usr/bin/env python3
"""A distributed application on tiny nodes: epidemic firmware updates.

The paper's closing claim is that LoRaMesher "can open the possibility
for new distributed applications hosted only on such tiny IoT nodes".
This example runs one: Deluge-style over-the-air update dissemination
built purely on the public mesh API (see ``repro.apps.ota``).

A 3x3 grid is seeded with firmware v2 at one corner.  Nodes advertise
their version to neighbours, out-of-date nodes request the image, and
each transfer is a single-hop reliable stream — the update ripples
outward like an epidemic, with no coordinator and no multi-hop bulk
traffic.

Run:  python examples/ota_dissemination.py
"""

from repro import MeshNetwork, MesherConfig
from repro.apps.ota import deploy_ota, dissemination_complete
from repro.topology import grid_positions

CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)
FIRMWARE = bytes(i % 251 for i in range(3 * 1024))  # a 3 KiB image
VERSION = 2


def holders_map(net, apps) -> str:
    """A 3x3 map of who holds the new firmware."""
    rows = []
    for r in range(3):
        cells = []
        for c in range(3):
            app = apps[net.addresses[r * 3 + c]]
            cells.append("##" if app.version >= VERSION else "..")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def main() -> None:
    net = MeshNetwork.from_positions(grid_positions(3, 3, spacing_m=100.0), config=CONFIG, seed=27)
    print("Converging a 3x3 grid mesh ...")
    print(f"converged after {net.run_until_converged(timeout_s=7200.0):.0f} s")

    apps = deploy_ota(net.nodes, advert_period_s=90.0, seed=27)
    seed_corner = net.addresses[0]
    print(f"\nSeeding firmware v{VERSION} ({len(FIRMWARE)} B) at node {seed_corner:04X}.\n")
    start = net.sim.now
    apps[seed_corner].install(VERSION, FIRMWARE)

    while not dissemination_complete(apps, VERSION):
        net.run(for_s=120.0)
        print(f"t = {net.sim.now - start:5.0f} s")
        print(holders_map(net, apps))
        print()
        if net.sim.now - start > 4 * 3600.0:
            raise SystemExit("dissemination stalled")

    elapsed = net.sim.now - start
    transfers = sum(a.stats.transfers_completed for a in apps.values())
    adverts = sum(a.stats.adverts_sent for a in apps.values())
    print(f"All 9 nodes updated in {elapsed:.0f} s.")
    print(
        f"Cost: {transfers} single-hop reliable transfers "
        f"(one per updated node), {adverts} adverts, "
        f"{net.total_airtime_s():.1f} s total airtime."
    )
    ok = all(apps[a].blob == FIRMWARE for a in net.addresses)
    print(f"Image integrity on every node: {'OK' if ok else 'CORRUPTED'}")


if __name__ == "__main__":
    main()
