#!/usr/bin/env python3
"""Live dashboard: record a mesh run into an event store and watch it.

A 9-node grid mesh runs for a simulated hour while every frame, routing
event, forwarding decision and periodic health sample streams into a
WAL-mode SQLite event store (`repro.obs.store`).  A `DashboardServer`
tails the *same file* from another connection — open the printed URL in
a browser to watch the topology map and health cards update live, then
use the replay controls to scrub back through the run.

Run:  python examples/live_dashboard.py
      (Ctrl-C stops the server; the store stays on disk for
       `python -m repro.cli replay --store live_dashboard.db --summary`)
"""

from repro import MeshNetwork
from repro.obs import (
    DashboardServer,
    EventStore,
    MetricsRegistry,
    StoreRecorder,
    TimeSeriesSampler,
    instrument_network,
)
from repro.topology import grid_positions

STORE_PATH = "live_dashboard.db"


def main() -> None:
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=120.0), seed=7
    )
    registry = instrument_network(MetricsRegistry(), net)
    sampler = TimeSeriesSampler(net.sim, registry, period_s=120.0)

    store = EventStore(STORE_PATH, mode="w")
    recorder = StoreRecorder(store, net, sampler=sampler)
    recorder.attach()

    print(f"Recording into {STORE_PATH} ...")
    convergence = net.run_until_converged(timeout_s=3600.0)
    if convergence is None:
        raise SystemExit("mesh did not converge — check the placement")
    recorder.mark("converged", t=convergence)
    print(f"Converged after {convergence:.0f} s of simulated time.")

    # Serve the store while it is still being written: WAL mode gives the
    # dashboard its own read snapshot alongside the single writer.
    server = DashboardServer(STORE_PATH, port=8437)
    server.start()
    print(f"Dashboard: {server.url}  (live tail + replay)")

    # Some multi-hop traffic for the route/forward feeds.
    corners = [net.addresses[0], net.addresses[2], net.addresses[6]]
    far = net.node(net.addresses[-1])
    for i, src in enumerate(corners):
        net.node(src).send_datagram(far.address, f"reading {i}".encode())
        net.run(for_s=30.0)  # stagger: simultaneous sends would collide
    net.run(for_s=3600.0)
    sampler.sample_now()

    recorder.detach()  # flush + finished=True: live SSE streams see the end
    store.close()
    print(
        f"Run finished: {EventStore(STORE_PATH, mode='r').count()} events "
        f"stored; {far.name} received "
        f"{sum(1 for _ in iter(far.receive, None))} datagrams."
    )

    print("Serving until Ctrl-C — try the replay controls in the browser.")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()


if __name__ == "__main__":
    main()
