#!/usr/bin/env python3
"""Campus sensor network — the IoT scenario the paper's introduction
motivates.

Twelve sensor nodes sit in four clusters strung across a campus (labs in
different buildings).  Every sensor periodically reports a reading to a
sink node in the first cluster.  Distant clusters are far outside the
sink's radio range, so the reports can only arrive because intermediate
nodes route them — no gateway, no LoRaWAN, just LoRaMesher.

The script measures per-sensor delivery ratio and latency as a function
of hop distance, and each node's energy cost.

Run:  python examples/campus_sensors.py
"""

import random

from repro import MeshNetwork
from repro.experiments.report import print_table
from repro.metrics import FlowRecorder, TTGO_LORA32, attach_recorder
from repro.net.addresses import format_address
from repro.topology import campus_positions
from repro.workload.traffic import PeriodicSender


def main() -> None:
    positions = campus_positions(
        clusters=4, nodes_per_cluster=3, cluster_distance_m=110.0, rng=random.Random(7)
    )
    net = MeshNetwork.from_positions(positions, seed=11)
    sink = net.node(net.addresses[0])
    sensors = [net.node(a) for a in net.addresses[1:]]
    print(f"Campus mesh: {len(net)} nodes in 4 clusters, sink = {sink.name}")

    print("Waiting for routing to converge ...")
    convergence = net.run_until_converged(timeout_s=7200.0)
    print(f"Converged after {convergence:.0f} s.\n")

    recorder = FlowRecorder()
    attach_recorder(recorder, sink)
    senders = [
        PeriodicSender(
            net.sim,
            sensor.address,
            sink.address,
            sensor.send_datagram,
            period_s=300.0,  # one reading every 5 minutes
            payload_size=24,
            listener=recorder,
            rng=random.Random(100 + sensor.address),
        )
        for sensor in sensors
    ]

    hours = 6
    print(f"Collecting sensor reports for {hours} simulated hours ...")
    net.run(for_s=hours * 3600.0)
    for sender in senders:
        sender.stop()
    net.run(for_s=300.0)  # drain

    rows = []
    for sensor in sensors:
        flow = recorder.flow(sensor.address, sink.address)
        hops = sink.table.metric(sensor.address)
        rows.append(
            (
                sensor.name,
                hops if hops is not None else "-",
                flow.sent,
                flow.delivered,
                f"{flow.pdr * 100:.1f}%",
                f"{flow.latency.mean:.2f}" if flow.latency else "-",
            )
        )
    print_table(
        ["sensor", "hops", "sent", "delivered", "PDR", "mean latency (s)"],
        rows,
        title=f"Per-sensor delivery to sink {sink.name} over {hours} h",
    )

    energy_rows = []
    for node in net.nodes:
        times = node.radio.state_times()
        energy_rows.append(
            (
                node.name,
                node.stats.frames_sent,
                node.stats.data_forwarded,
                f"{node.radio.tx_airtime_s:.2f}",
                f"{TTGO_LORA32.energy_j(times):.1f}",
                f"{TTGO_LORA32.battery_life_days(times, elapsed_s=net.sim.now, battery_mah=1000):.0f}",
            )
        )
    print_table(
        ["node", "frames", "forwarded", "TX airtime (s)", "energy (J)", "battery days (1 Ah)"],
        energy_rows,
        title="Per-node cost (routers pay for the packets they forward)",
    )

    agg = recorder.aggregate_pdr()
    print(f"\nNetwork PDR: {agg * 100:.1f}% over {recorder.total_sent()} reports.")


if __name__ == "__main__":
    main()
