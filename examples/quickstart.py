#!/usr/bin/env python3
"""Quickstart: the paper's demo in five minutes of simulated radio time.

Four LoRa nodes are placed in a line, 120 m apart — adjacent nodes can
hear each other, but the two ends cannot.  The script shows the three
things the ICDCS demo showed live:

1. the nodes discover each other and the routing tables converge,
2. the end nodes exchange a data packet through the two middle routers,
3. the routing tables are printed like the demo's serial console.

Run:  python examples/quickstart.py
"""

from repro import MeshNetwork
from repro.net.addresses import format_address
from repro.topology import line_positions


def main() -> None:
    positions = line_positions(4, spacing_m=120.0)
    print("Placing 4 nodes on a line, 120 m apart (SF7 range is ~135 m):")
    for i, pos in enumerate(positions):
        print(f"  node {format_address(0x0001 + i)} at x = {pos[0]:.0f} m")

    net = MeshNetwork.from_positions(positions, seed=42)

    print("\nRunning until every node can route to every other node ...")
    convergence = net.run_until_converged(timeout_s=3600.0)
    if convergence is None:
        raise SystemExit("mesh did not converge — check the placement")
    print(f"Converged after {convergence:.0f} s of simulated time.\n")
    print(net.describe())

    alice = net.node(net.addresses[0])
    dora = net.node(net.addresses[-1])
    hops = alice.table.metric(dora.address)
    print(f"\n{alice.name} -> {dora.name} is a {hops}-hop route.")

    print(f"{alice.name} sends 'hello mesh' to {dora.name} ...")
    alice.send_datagram(dora.address, b"hello mesh")
    net.run(for_s=60.0)

    message = dora.receive()
    if message is None:
        raise SystemExit("the datagram was lost — unexpected on an idle mesh")
    print(
        f"{dora.name} received {message.payload!r} from "
        f"{format_address(message.src)} at t={message.received_at:.2f} s"
    )

    print("\nAnd back the other way, reliably (ACKed):")
    outcome = {}
    dora.send_reliable(
        alice.address,
        b"hello to you too",
        on_complete=lambda ok, why: outcome.update(ok=ok, why=why),
    )
    net.run(for_s=120.0)
    reply = alice.receive()
    print(f"{alice.name} received {reply.payload!r} (sender saw: {outcome})")

    print(
        f"\nTotals: {net.total_frames_sent()} frames on the air, "
        f"{net.total_airtime_s() * 1000:.0f} ms of airtime."
    )


if __name__ == "__main__":
    main()
