#!/usr/bin/env python3
"""Gateway roles: address-free uplink to the nearest internet egress.

LoRaMesher routing entries carry role bits; a node flagged GATEWAY is
advertised across the mesh by the normal hello dissemination.  Sensors
then send "to the nearest gateway" without knowing any address — and
transparently fail over when that gateway dies.

The script builds a 6-node line with gateways at both ends, shows each
sensor picking its closer gateway, then kills one gateway and watches the
sensors re-target the survivor.

Run:  python examples/gateway_uplink.py
"""

from repro import MeshNetwork, MesherConfig
from repro.net.gateway import GatewayClient, nearest_gateway
from repro.net.packets import NodeRole
from repro.topology import line_positions

CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=240.0, purge_period_s=30.0)
GW_CONFIG = CONFIG.replace(role=int(NodeRole.GATEWAY))


def show_targets(net: MeshNetwork, sensors) -> None:
    for sensor in sensors:
        target = nearest_gateway(sensor)
        if target is None:
            print(f"  {sensor.name}: no gateway known")
        else:
            print(f"  {sensor.name}: -> gateway {target.address:04X} ({target.metric} hops)")


def main() -> None:
    n = 6
    configs = [GW_CONFIG] + [None] * (n - 2) + [GW_CONFIG]
    net = MeshNetwork.from_positions(
        line_positions(n), config=CONFIG, configs=configs, seed=15
    )
    gw_a, gw_b = net.nodes[0], net.nodes[-1]
    sensors = net.nodes[1:-1]
    print(f"Line of {n} nodes; gateways at both ends ({gw_a.name}, {gw_b.name}).")

    print("\nConverging ...")
    print(f"converged after {net.run_until_converged(timeout_s=7200.0):.0f} s")
    print("\nEach sensor's nearest gateway:")
    show_targets(net, sensors)

    print("\nEvery sensor uplinks one reading:")
    clients = {sensor.address: GatewayClient(sensor) for sensor in sensors}
    for sensor in sensors:
        clients[sensor.address].send(f"reading from {sensor.name}".encode())
    net.run(for_s=120.0)
    for gw in (gw_a, gw_b):
        received = []
        while (m := gw.receive()) is not None:
            received.append(m.src)
        print(f"  gateway {gw.name} received from: {[f'{a:04X}' for a in sorted(received)]}")

    print(f"\nGateway {gw_a.name} fails ...")
    gw_a.fail()
    net.run(for_s=CONFIG.route_timeout_s + 2 * CONFIG.hello_period_s)
    print("Targets after the stale routes expired:")
    show_targets(net, sensors)

    print("\nUplinks now all land on the survivor:")
    for sensor in sensors:
        clients[sensor.address].send(f"retargeted from {sensor.name}".encode())
    net.run(for_s=120.0)
    received = []
    while (m := gw_b.receive()) is not None:
        received.append(m.src)
    print(f"  gateway {gw_b.name} received from: {[f'{a:04X}' for a in sorted(received)]}")


if __name__ == "__main__":
    main()
