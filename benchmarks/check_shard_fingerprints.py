"""Serial-vs-sharded fingerprint identity check (CI shard-smoke gate).

Runs the E4 large-N workload (same placements, same ``LARGE_N_CONFIG``,
same convergence-check cadence as ``bench_e4_scalability.py``) through
the serial kernel and the sharded runner, and asserts the exactness
contracts :mod:`repro.sim.shard` promises:

1. ``shards=1`` reproduces the serial run **bit-exactly** — identical
   convergence time, frame/byte counts, and per-node routing-table
   digests.
2. For ``shards>1`` the fingerprint is identical for **any** worker
   count: partitioning decides semantics, processes only decide
   wall-clock.

For ``shards>1`` on a connected mesh the windowed-visibility semantics
are a deterministic model change; the script prints the measured drift
against the serial run (convergence delta, frame-count delta) so it is
documented, not hidden.

Usage::

    PYTHONPATH=src python benchmarks/check_shard_fingerprints.py --sizes 100 300
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_e4_scalability import LARGE_N_CONFIG, connected_placement_large
from repro.net.api import MeshNetwork
from repro.sim.shard import network_fingerprint, run_sharded

CHECK_PERIOD_S = 120.0


def serial_point(positions, seed: int):
    net = MeshNetwork.from_positions(
        positions, config=LARGE_N_CONFIG, seed=seed, trace_enabled=False
    )
    start = time.perf_counter()
    convergence = net.run_until_converged(
        timeout_s=86400.0, check_period_s=CHECK_PERIOD_S
    )
    wall = time.perf_counter() - start
    return network_fingerprint(net, convergence_s=convergence), wall


def sharded_point(positions, seed: int, *, shards: int, workers: int, window_s: float):
    start = time.perf_counter()
    result = run_sharded(
        positions,
        shards=shards,
        workers=workers,
        config=LARGE_N_CONFIG,
        seed=seed,
        window_s=window_s,
        converge_timeout_s=86400.0,
        check_period_s=CHECK_PERIOD_S,
    )
    wall = time.perf_counter() - start
    return result, wall


def check_size(n: int, seed: int, window_s: float) -> None:
    positions, stats = connected_placement_large(n, seed)
    print(f"[n={n}] placement: diameter={stats.diameter}", flush=True)

    serial, serial_wall = serial_point(positions, seed)
    print(
        f"[n={n}] serial:              digest={serial['digest']} "
        f"conv={serial['convergence_s']:.0f}s frames={serial['frames']} "
        f"({serial_wall:.1f}s wall)",
        flush=True,
    )

    # Contract 1: shards=1 is the serial run, bit for bit.  The window
    # must match the serial convergence-check cadence so the kernel sees
    # the identical run(until=...) call sequence.
    single, single_wall = sharded_point(
        positions, seed, shards=1, workers=1, window_s=CHECK_PERIOD_S
    )
    print(
        f"[n={n}] sharded shards=1:    digest={single.fingerprint['digest']} "
        f"({single_wall:.1f}s wall)",
        flush=True,
    )
    assert single.fingerprint == serial, (
        f"n={n}: shards=1 fingerprint diverged from serial\n"
        f"  serial : {serial}\n  sharded: {single.fingerprint}"
    )

    # Contract 2: worker count never changes the result.
    two_w1, w1_wall = sharded_point(
        positions, seed, shards=2, workers=1, window_s=window_s
    )
    two_w2, w2_wall = sharded_point(
        positions, seed, shards=2, workers=2, window_s=window_s
    )
    print(
        f"[n={n}] shards=2 workers=1:  digest={two_w1.fingerprint['digest']} "
        f"exports={two_w1.boundary_exports} ({w1_wall:.1f}s wall)",
        flush=True,
    )
    print(
        f"[n={n}] shards=2 workers=2:  digest={two_w2.fingerprint['digest']} "
        f"exports={two_w2.boundary_exports} ({w2_wall:.1f}s wall)",
        flush=True,
    )
    assert two_w1.fingerprint == two_w2.fingerprint, (
        f"n={n}: worker count changed the shards=2 fingerprint\n"
        f"  workers=1: {two_w1.fingerprint}\n  workers=2: {two_w2.fingerprint}"
    )
    assert two_w1.boundary_exports > 0, (
        f"n={n}: connected placement exchanged no boundary frames — "
        "the worker-invariance check would be vacuous"
    )

    # Documented drift of the windowed-visibility semantics (shards>1).
    conv_delta = (two_w1.convergence_s or float("nan")) - serial["convergence_s"]
    frame_delta = two_w1.frames - serial["frames"]
    print(
        f"[n={n}] windowed-visibility drift vs serial (shards=2, "
        f"window={window_s:g}s): convergence {conv_delta:+.0f}s, "
        f"frames {frame_delta:+d} "
        f"({100.0 * frame_delta / serial['frames']:+.2f}%)",
        flush=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[100, 300])
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--window-s", type=float, default=5.0)
    args = parser.parse_args()

    for n in args.sizes:
        check_size(n, args.seed, args.window_s)
    print(f"fingerprint identity OK for n={args.sizes}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
