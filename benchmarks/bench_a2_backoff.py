"""A2 — Ablation: random pre-TX backoff (listen-before-talk).

LoRaMesher waits a random interval (and checks channel activity) before
every transmission so that co-located nodes reacting to the same event
do not collide.  We ablate the backoff window in a dense single-cell
network where every node broadcasts in the same epoch.

Expected shape: with no backoff, simultaneous reactions collide and CRC
failures spike; widening the window spreads the transmissions and raises
delivery.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.placement import ring_positions


def run_backoff(slots: int, seed: int):
    # 8 nodes in one radio cell; everyone broadcasts "simultaneously"
    # every epoch — the worst case the backoff exists for.
    config = BENCH_CONFIG.replace(backoff_slots=slots, backoff_slot_s=0.03)
    net = MeshNetwork.from_positions(
        ring_positions(8, radius_m=60.0), config=config, seed=seed, trace_enabled=False
    )
    net.run_until_converged(timeout_s=3600.0)
    epochs = 40
    for _ in range(epochs):
        for node in net.nodes:
            node.broadcast(b"event!")
        net.run(for_s=30.0)
    delivered = sum(n.stats.data_delivered for n in net.nodes)
    crc_failures = sum(n.stats.crc_failures for n in net.nodes)
    expected = epochs * 8 * 7  # every broadcast heard by 7 others
    return {
        "slots": slots,
        "delivery": delivered / expected,
        "crc_failures": crc_failures,
        "cad_deferrals": sum(n.stats.cad_deferrals for n in net.nodes),
    }


def test_a2_backoff_window_sweep(benchmark):
    windows = (0, 2, 8, 32)
    results = benchmark.pedantic(
        lambda: [run_backoff(slots, seed=2) for slots in windows], rounds=1, iterations=1
    )
    rows = [
        (
            r["slots"],
            f"{r['delivery'] * 100:.1f}%",
            r["crc_failures"],
            r["cad_deferrals"],
        )
        for r in results
    ]
    print_table(
        ["backoff slots", "broadcast delivery", "CRC failures", "CAD deferrals"],
        rows,
        title="A2: synchronized broadcasts in one radio cell (8 nodes x 40 epochs)",
    )

    by_slots = {r["slots"]: r for r in results}
    # Shape: no backoff collides hard; a wide window mostly fixes it.
    assert by_slots[0]["crc_failures"] > by_slots[32]["crc_failures"]
    assert by_slots[32]["delivery"] > by_slots[0]["delivery"]
    assert by_slots[32]["delivery"] > 0.9
