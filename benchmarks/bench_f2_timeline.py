"""F2 — Figure: routing coverage over time from cold start.

Paper artifact: the demo's narrative arc — power the boards on, watch
routing tables fill, see full connectivity emerge.  We sample the
fraction of routed (src, dst) pairs every 10 s on the 4-node line and an
8-node grid and plot coverage vs time, including a mid-run node failure
to show the dip-and-recover shape.

Expected shape: a staircase rising to 1.0 within a few hello periods;
after the failure, a dip when stale routes expire, then recovery once the
recovered node re-announces.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.mobility import FailureSchedule
from repro.topology.placement import grid_positions, line_positions

SAMPLE_PERIOD_S = 10.0


def coverage_timeline(positions, seed, *, duration_s, fail_at=None, recover_at=None):
    net = MeshNetwork.from_positions(positions, config=BENCH_CONFIG, seed=seed, trace_enabled=False)
    victim = net.nodes[len(net.nodes) // 2]
    schedule = FailureSchedule(net.sim)
    if fail_at is not None:
        schedule.fail_at(fail_at, victim)
    if recover_at is not None:
        schedule.recover_at(recover_at, victim)
    samples = []
    while net.sim.now < duration_s:
        net.run(for_s=SAMPLE_PERIOD_S)
        samples.append((net.sim.now, net.coverage()))
    return samples


def test_f2_coverage_over_time(benchmark):
    def run():
        return {
            "line4": coverage_timeline(line_positions(4), seed=3, duration_s=600.0),
            "grid8": coverage_timeline(
                grid_positions(2, 4, spacing_m=100.0), seed=3, duration_s=600.0
            ),
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        ascii_plot(
            curves,
            title="F2a: routed-pair coverage from cold start",
            x_label="time (s)",
            y_label="coverage",
            width=70,
            height=12,
        )
    )
    for name, curve in curves.items():
        final = curve[-1][1]
        reached = next((t for t, c in curve if c >= 1.0), None)
        print_table(
            ["series", "full coverage at (s)", "final coverage"],
            [(name, f"{reached:.0f}" if reached else "never", f"{final * 100:.0f}%")],
        )
        # Shape: monotone non-decreasing staircase reaching 1.0.
        values = [c for _, c in curve]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert final == 1.0


def test_f2_failure_dip_and_recovery(benchmark):
    curve = benchmark.pedantic(
        lambda: coverage_timeline(
            line_positions(4),
            seed=5,
            duration_s=1800.0,
            fail_at=600.0,
            recover_at=900.0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_plot(
            {"line4 w/ failure": curve},
            title="F2b: relay fails at t=600 s, recovers at t=900 s",
            x_label="time (s)",
            y_label="coverage",
            width=70,
            height=12,
        )
    )
    before = [c for t, c in curve if 300.0 <= t < 600.0]
    during = [c for t, c in curve if 700.0 <= t < 1000.0]
    after = [c for t, c in curve if t >= 1500.0]
    # Shape: full before, dipped while the relay is dead (routes through
    # it go stale), fully recovered at the end.
    assert min(before) == 1.0
    assert min(during) < 1.0
    assert after[-1] == 1.0
