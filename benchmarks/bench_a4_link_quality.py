"""A4 — Ablation: SNR-based link-quality tie-breaking (extension).

The paper's protocol routes purely on hop count; an equal-metric route
through a marginal link is as good as one through a strong link.  The
``link_quality_tiebreak_db`` extension prefers the stronger first hop on
ties.  We evaluate both on a diamond whose two 2-hop paths differ only in
link quality: the weak relay sits near the edge of radio range (frames
occasionally lost to shadowing-free but marginal SNR under interference),
the strong relay is close.

With a deterministic channel, marginal links either work or don't — so
to expose the difference we inject 30 % frame loss on every link touching
the weak relay (the fading a real deployment sees on links that sit a
fraction of a dB above the demodulation floor).

Expected shape: hop-count routing picks whichever relay it heard first
(~50/50 across seeds) and suffers when it's the weak one; quality-aware
routing converges on the strong relay and delivers more.
"""

import random

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.metrics.collect import FlowRecorder, attach_recorder
from repro.net.api import MeshNetwork
from repro.workload.traffic import PeriodicSender

# Source A, weak relay W (131 m links, SNR ~ -7.1 dB, barely above the
# SF7 floor of -7.5), strong relay S (95 m links, SNR ~ -4.2 dB),
# destination D.  The SNR gap is ~2.9 dB, above the 2 dB tie-break.
POSITIONS = [
    (0.0, 0.0),  # A
    (95.0, 90.0),  # W: marginal links to both ends
    (95.0, 10.0),  # S: strong links to both ends
    (190.0, 0.0),  # D
]

TIEBREAK_DB = 2.0


def run_variant(tiebreak, seed):
    # Loss model: the weak relay's links lose 30% of frames in both
    # directions; all other links are clean.
    weak_address = 0x0002
    rng = random.Random(seed * 31 + 7)

    def injector(tx, rx_id):
        if tx.sender_id == weak_address or rx_id == weak_address:
            return rng.random() < 0.30
        return False

    config = BENCH_CONFIG.replace(link_quality_tiebreak_db=tiebreak)
    net = MeshNetwork.from_positions(
        POSITIONS, config=config, seed=seed, loss_injector=injector, trace_enabled=False
    )
    if net.run_until_converged(timeout_s=7200.0) is None:
        return None
    a, d = net.nodes[0], net.nodes[3]
    recorder = FlowRecorder()
    attach_recorder(recorder, d)
    sender = PeriodicSender(
        net.sim, a.address, d.address, a.send_datagram,
        period_s=30.0, listener=recorder, rng=random.Random(seed),
    )
    net.run(for_s=3600.0)
    sender.stop()
    net.run(for_s=120.0)
    flow = recorder.flow(a.address, d.address)
    return {
        "via": a.table.next_hop(d.address),
        "pdr": flow.pdr,
    }


def test_a4_link_quality_tiebreak(benchmark):
    seeds = (1, 2, 3, 4, 5, 6)

    def sweep():
        return {
            "hop-count (paper)": [run_variant(None, s) for s in seeds],
            "quality-aware (+2 dB)": [run_variant(TIEBREAK_DB, s) for s in seeds],
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, trials in results.items():
        trials = [t for t in trials if t is not None]
        weak_picks = sum(1 for t in trials if t["via"] == 0x0002)
        mean_pdr = sum(t["pdr"] for t in trials) / len(trials)
        rows.append((name, f"{weak_picks}/{len(trials)}", f"{mean_pdr * 100:.1f}%"))
    print_table(
        ["routing", "runs ending on the lossy relay", "mean PDR"],
        rows,
        title="A4: equal-hop diamond, one relay loses 30% of frames (6 seeds)",
    )

    paper = [t for t in results["hop-count (paper)"] if t is not None]
    aware = [t for t in results["quality-aware (+2 dB)"] if t is not None]
    paper_pdr = sum(t["pdr"] for t in paper) / len(paper)
    aware_pdr = sum(t["pdr"] for t in aware) / len(aware)
    aware_weak = sum(1 for t in aware if t["via"] == 0x0002)
    # Shape: quality-aware routing avoids the lossy relay and delivers at
    # least as well as hop-count routing on average.
    assert aware_weak <= sum(1 for t in paper if t["via"] == 0x0002)
    assert aware_pdr >= paper_pdr - 0.02
