"""E8 — Route repair after relay failure.

Paper artifact: the self-healing behaviour implied by the demo ("the
other nodes operate as routers" — and keep doing so when one dies).  On
a diamond topology with two disjoint relay paths we kill the active
relay mid-run and measure the blackhole window until traffic flows via
the surviving relay.

Expected shape: repair time is bounded by route_timeout + a couple of
hello periods, and shrinks when the route timeout is shortened (at the
cost of more hello sensitivity — the A3 ablation).
"""

import random

from benchmarks.conftest import BENCH_CONFIG, attach_bench_checker, conclude_bench_checker
from repro.experiments.report import print_table
from repro.metrics.collect import FlowRecorder, attach_recorder
from repro.net.api import MeshNetwork
from repro.topology.mobility import FailureSchedule
from repro.workload.traffic import PeriodicSender

DIAMOND = [(0.0, 0.0), (120.0, 45.0), (120.0, -45.0), (240.0, 0.0)]


def run_repair(route_timeout_s: float, seed: int):
    config = BENCH_CONFIG.replace(
        route_timeout_s=route_timeout_s,
        purge_period_s=min(30.0, route_timeout_s / 4),
    )
    net = MeshNetwork.from_positions(DIAMOND, config=config, seed=seed, trace_enabled=False)
    checker = attach_bench_checker(net)
    if net.run_until_converged(timeout_s=3600.0) is None:
        return None
    a, d = net.nodes[0], net.nodes[3]
    relay_address = a.table.next_hop(d.address)
    relay = net.node(relay_address)

    recorder = FlowRecorder()
    attach_recorder(recorder, d)
    sender = PeriodicSender(
        net.sim, a.address, d.address, a.send_datagram,
        period_s=15.0, listener=recorder, rng=random.Random(seed),
    )
    kill_time = net.sim.now + 120.0
    FailureSchedule(net.sim).fail_at(kill_time, relay)

    # Run until the route points at the surviving relay (or time out).
    deadline = kill_time + route_timeout_s + 10 * config.hello_period_s
    repaired_at = None
    while net.sim.now < deadline:
        net.run(for_s=5.0)
        via = a.table.next_hop(d.address)
        if via is not None and via != relay_address:
            repaired_at = net.sim.now
            break
    sender.stop()
    net.run(for_s=60.0)
    conclude_bench_checker(checker)
    flow = recorder.flow(a.address, d.address)
    return {
        "route_timeout_s": route_timeout_s,
        "repair_s": (repaired_at - kill_time) if repaired_at else None,
        "bound_s": route_timeout_s + 2 * config.hello_period_s,
        "pdr_through_failure": flow.pdr,
        "sent": flow.sent,
    }


def test_e8_repair_time_vs_route_timeout(benchmark):
    timeouts = (120.0, 300.0, 600.0)
    results = benchmark.pedantic(
        lambda: [run_repair(t, seed=13) for t in timeouts], rounds=1, iterations=1
    )
    rows = [
        (
            f"{r['route_timeout_s']:.0f}",
            f"{r['repair_s']:.0f}" if r["repair_s"] is not None else "never",
            f"{r['bound_s']:.0f}",
            f"{r['pdr_through_failure'] * 100:.0f}%",
            r["sent"],
        )
        for r in results
        if r is not None
    ]
    print_table(
        ["route timeout (s)", "repair time (s)", "analytic bound (s)", "PDR incl. blackhole", "probes"],
        rows,
        title="E8: relay killed at t=120 s on a diamond; time to reroute",
    )

    assert all(r is not None and r["repair_s"] is not None for r in results), "no repair"
    # Shape: repair within the analytic bound, monotone in the timeout.
    for r in results:
        assert r["repair_s"] <= r["bound_s"] + 1.0
    assert results[0]["repair_s"] < results[-1]["repair_s"]
    # Traffic flowed outside the blackhole window, and the longer the
    # timeout the larger the blackhole's share of the run (lower PDR).
    assert all(r["pdr_through_failure"] > 0.05 for r in results)
    assert results[0]["pdr_through_failure"] > results[-1]["pdr_through_failure"]
