"""E9 — Distributed application showcase: OTA dissemination strategies.

The paper's final claim — the mesh enables distributed applications on
tiny nodes — made measurable.  We distribute a firmware image to every
node of a 5-node line two ways:

* **naive unicast**: the seed opens one multi-hop reliable stream per
  node (the obvious centralised design),
* **epidemic** (`repro.apps.ota`): neighbours advertise/request/serve,
  so every transfer is single-hop.

Expected shape: the epidemic needs zero forwarded fragments and less
total airtime, because the naive design ships fragment k over h hops
(sum over nodes = O(n²) fragment-hops) while the epidemic ships each
fragment once per node (O(n)).
"""

import random

from benchmarks.conftest import BENCH_CONFIG
from repro.apps.ota import deploy_ota, dissemination_complete, encode_blob
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.placement import line_positions

IMAGE = bytes(i % 249 for i in range(2048))
N = 5


def build_net(seed):
    net = MeshNetwork.from_positions(line_positions(N), config=BENCH_CONFIG, seed=seed, trace_enabled=False)
    assert net.run_until_converged(timeout_s=7200.0) is not None
    return net


def run_naive(seed):
    net = build_net(seed)
    seed_node = net.nodes[0]
    start = net.sim.now
    outcomes = {}
    for address in net.addresses[1:]:
        seed_node.send_reliable(
            address,
            encode_blob(1, IMAGE),
            on_complete=lambda ok, why, _a=address: outcomes.__setitem__(_a, ok),
        )
    deadline = start + 8 * 3600.0
    while len(outcomes) < N - 1 and net.sim.now < deadline:
        net.run(for_s=60.0)
    net.run(for_s=120.0)
    return {
        "strategy": "naive unicast",
        "done": all(outcomes.get(a) for a in net.addresses[1:]),
        "time_s": net.sim.now - start,
        "airtime_s": net.total_airtime_s(),
        "forwards": sum(n.stats.data_forwarded for n in net.nodes),
        "frames": net.total_frames_sent(),
    }


def run_epidemic(seed):
    net = build_net(seed)
    apps = deploy_ota(net.nodes, advert_period_s=90.0, seed=seed)
    start = net.sim.now
    apps[net.addresses[0]].install(1, IMAGE)
    deadline = start + 8 * 3600.0
    while not dissemination_complete(apps, 1) and net.sim.now < deadline:
        net.run(for_s=60.0)
    return {
        "strategy": "epidemic (apps.ota)",
        "done": dissemination_complete(apps, 1),
        "time_s": net.sim.now - start,
        "airtime_s": net.total_airtime_s(),
        "forwards": sum(n.stats.data_forwarded for n in net.nodes),
        "frames": net.total_frames_sent(),
    }


def test_e9_ota_distribution_strategies(benchmark):
    results = benchmark.pedantic(
        lambda: [run_naive(3), run_epidemic(3)], rounds=1, iterations=1
    )
    rows = [
        (
            r["strategy"],
            "all updated" if r["done"] else "INCOMPLETE",
            f"{r['time_s']:.0f}",
            f"{r['airtime_s']:.1f}",
            r["forwards"],
            r["frames"],
        )
        for r in results
    ]
    print_table(
        ["strategy", "outcome", "time (s)", "airtime (s)", "forwarded frames", "total frames"],
        rows,
        title=f"E9: distributing a {len(IMAGE)} B image to a {N}-node line",
    )

    naive, epidemic = results
    assert naive["done"] and epidemic["done"]
    # Shape: the epidemic never forwards bulk traffic and spends less
    # airtime; the naive design pays O(n^2) fragment-hops.
    assert epidemic["forwards"] == 0
    assert naive["forwards"] > 0
    assert epidemic["airtime_s"] < naive["airtime_s"]
