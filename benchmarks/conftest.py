"""Shared configuration for the benchmark harness.

Each bench file regenerates one table/figure from the paper's evaluation
(see DESIGN.md section 4 and EXPERIMENTS.md for the mapping).  Run with::

    pytest benchmarks/ --benchmark-only

Every bench prints its rows through
:func:`repro.experiments.report.print_table` so the output reads like the
paper's tables; pytest-benchmark additionally reports wall-clock cost of
the underlying simulation.
"""

import json
import os
from pathlib import Path

import pytest

from repro.net.config import MesherConfig

#: The configuration used across benches unless a bench sweeps it: the
#: firmware defaults scaled down (hello every 60 s instead of 120 s) so a
#: bench run completes in seconds of wall-clock while keeping the same
#: period/timeout ratios.
BENCH_CONFIG = MesherConfig(
    hello_period_s=60.0,
    route_timeout_s=300.0,
    purge_period_s=30.0,
)

#: Seeds for repeated trials.
SEEDS = [11, 22, 33]

#: Worker processes for seed/point fan-out (``REPRO_BENCH_WORKERS=4``);
#: 0/unset runs serially.  Parallel and serial runs produce identical
#: numbers — every point is seeded explicitly.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None

#: Where benches drop machine-readable results (override with
#: ``REPRO_BENCH_RESULTS``); each bench writes ``BENCH_<name>.json``.
RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results"))


def export_bench_json(name: str, payload: dict) -> Path:
    """Write one bench's machine-readable document to the results dir.

    Returns the written path.  Payloads embed ``timeseries`` fields when
    the bench sampled its runs (see ``run_protocol(sample_period_s=...)``
    and :func:`repro.experiments.export.run_result_summary`).
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


#: When ``REPRO_BENCH_VERIFY=1`` the mesh benches run under the strict
#: protocol invariant checker (see ``repro.verify``): every audit period
#: the global invariants are checked and the first violation fails the
#: bench.  Off by default — auditing costs a periodic O(nodes * routes)
#: sweep that would pollute the perf numbers.
BENCH_VERIFY = os.environ.get("REPRO_BENCH_VERIFY", "").strip().lower() not in (
    "", "0", "false", "no"
)

#: Audit cadence for gated benches (seconds, simulated).
BENCH_VERIFY_PERIOD_S = float(os.environ.get("REPRO_BENCH_VERIFY_PERIOD", "30"))


def attach_bench_checker(net):
    """A strict invariant checker on ``net`` when the gate is on.

    Returns the attached checker, or None when ``REPRO_BENCH_VERIFY`` is
    unset.  Call :func:`conclude_bench_checker` after the scenario for
    the final end-state audit.
    """
    if not BENCH_VERIFY:
        return None
    from repro.verify import InvariantChecker

    return InvariantChecker(
        net, audit_period_s=BENCH_VERIFY_PERIOD_S, strict=True
    ).attach()


def conclude_bench_checker(checker) -> None:
    """Final audit of a gated bench's end state (no-op when gated off)."""
    if checker is not None:
        checker.audit()


def verify_kwargs() -> dict:
    """Extra ``run_protocol`` kwargs under the ``REPRO_BENCH_VERIFY`` gate."""
    if not BENCH_VERIFY:
        return {}
    return {
        "verify": True,
        "verify_strict": True,
        "verify_audit_period_s": BENCH_VERIFY_PERIOD_S,
    }


@pytest.fixture
def bench_config():
    return BENCH_CONFIG
