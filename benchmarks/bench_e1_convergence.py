"""E1 — Routing-table convergence from cold start.

Paper artifact: the demo's core claim — nodes powered on with empty
tables discover the whole mesh through periodic hellos.  We reproduce the
routing-table build-up on the 4-node line the demo used, reporting when
each node's table reached each size and the network-wide convergence
time.

Expected shape: convergence completes within a few hello periods, and
the time to learn a destination grows with its hop distance (information
propagates one hop per hello round).
"""

from benchmarks.conftest import (
    BENCH_CONFIG,
    BENCH_WORKERS,
    SEEDS,
    attach_bench_checker,
    conclude_bench_checker,
)
from repro.experiments.report import print_table
from repro.experiments.sweep import repeat_seeds
from repro.net.api import MeshNetwork
from repro.topology.placement import line_positions
from repro.trace.events import EventKind


def converge_once(seed: int):
    net = MeshNetwork.from_positions(line_positions(4), config=BENCH_CONFIG, seed=seed)
    checker = attach_bench_checker(net)
    t = net.run_until_converged(timeout_s=3600.0, check_period_s=5.0)
    conclude_bench_checker(checker)
    return net, t


def convergence_time(seed: int):
    """Module-level so the seed fan-out can cross process boundaries."""
    return converge_once(seed)[1]


def test_e1_convergence_timeline(benchmark):
    net, convergence = benchmark.pedantic(
        lambda: converge_once(SEEDS[0]), rounds=1, iterations=1
    )
    assert convergence is not None, "the demo line must converge"

    # Per-node table growth timeline from the trace.
    rows = []
    for node in net.nodes:
        additions = net.trace.events(EventKind.ROUTE_ADDED, node=node.address)
        learned = {e.detail["dst"]: e.time for e in additions}
        for dst, t in sorted(learned.items()):
            rows.append((node.name, f"{dst:04X}", f"{t:.1f}"))
    print_table(
        ["node", "learned dst", "at t (s)"],
        rows,
        title="E1: routing-table build-up, 4-node line, hello=60 s (seed 11)",
    )

    mean_t, ci, raw = repeat_seeds(convergence_time, SEEDS, workers=BENCH_WORKERS)
    print_table(
        ["metric", "value"],
        [
            ("full convergence (mean s)", f"{mean_t:.1f}"),
            ("95% CI half-width (s)", f"{ci:.1f}"),
            ("hello period (s)", BENCH_CONFIG.hello_period_s),
            ("trials", len(SEEDS)),
        ],
        title="E1: convergence time over seeds",
    )
    # Shape assertions: converged within a handful of hello periods.
    assert mean_t < 8 * BENCH_CONFIG.hello_period_s

    # Distant destinations are learned no earlier than near ones
    # (information travels one hop per hello round).
    first = net.nodes[0]
    additions = {
        e.detail["dst"]: e.time
        for e in net.trace.events(EventKind.ROUTE_ADDED, node=first.address)
    }
    assert additions[net.addresses[1]] <= additions[net.addresses[3]]
