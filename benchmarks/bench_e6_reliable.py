"""E6 — Reliable large-payload transfer.

Paper artifact: LoRaMesher's large-payload support (SYNC / XL_DATA /
LOST / ACK) — the feature that enables "new distributed applications" on
the nodes.  We sweep payload size and injected loss across a 2-hop path,
reporting goodput, retransmissions, and repair traffic.

Expected shape: transfers complete under loss at the cost of
retransmissions; goodput degrades with loss but does not collapse;
per-fragment overhead makes small payloads proportionally costlier.
"""

import random

from benchmarks.conftest import BENCH_CONFIG, attach_bench_checker, conclude_bench_checker
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.placement import line_positions


def transfer(payload_size: int, loss_rate: float, seed: int):
    loss_rng = random.Random(seed * 7 + 1)
    injector = (lambda tx, rx: loss_rng.random() < loss_rate) if loss_rate else None
    net = MeshNetwork.from_positions(
        line_positions(3),
        config=BENCH_CONFIG,
        seed=seed,
        loss_injector=injector,
        trace_enabled=False,
    )
    checker = attach_bench_checker(net)
    if net.run_until_converged(timeout_s=3600.0) is None:
        return None
    src, dst = net.nodes[0], net.nodes[-1]
    payload = random.Random(seed).randbytes(payload_size)
    outcome = {}
    start = net.sim.now
    src.send_reliable(dst.address, payload, lambda ok, why: outcome.update(ok=ok, why=why))
    net.run(for_s=7200.0)
    conclude_bench_checker(checker)
    message = dst.receive()
    ok = outcome.get("ok", False) and message is not None and message.payload == payload
    elapsed = (message.received_at - start) if message else float("nan")
    return {
        "ok": ok,
        "elapsed_s": elapsed,
        "goodput_bps": 8 * payload_size / elapsed if ok else 0.0,
        "fragments": src.reliable.fragments_sent,
        "retx": src.reliable.retransmissions,
        "losts": dst.reliable.losts_sent,
        "airtime_s": net.total_airtime_s(),
    }


def test_e6_payload_size_sweep(benchmark):
    sizes = (100, 500, 2000, 8192)
    results = benchmark.pedantic(
        lambda: {size: transfer(size, 0.0, seed=3) for size in sizes}, rounds=1, iterations=1
    )
    rows = [
        (
            size,
            "ok" if r["ok"] else "FAIL",
            f"{r['elapsed_s']:.1f}",
            f"{r['goodput_bps']:.0f}",
            r["fragments"],
            f"{r['airtime_s']:.1f}",
        )
        for size, r in results.items()
    ]
    print_table(
        ["payload (B)", "outcome", "time (s)", "goodput (bit/s)", "fragments", "airtime (s)"],
        rows,
        title="E6a: reliable transfer vs payload size (2 hops, clean channel)",
    )
    assert all(r["ok"] for r in results.values())
    # Bigger payloads amortise per-stream overhead: goodput improves.
    assert results[8192]["goodput_bps"] > results[100]["goodput_bps"]


def test_e6_loss_sweep(benchmark):
    losses = (0.0, 0.1, 0.2, 0.3)
    results = benchmark.pedantic(
        lambda: {loss: transfer(2000, loss, seed=4) for loss in losses}, rounds=1, iterations=1
    )
    rows = [
        (
            f"{loss * 100:.0f}%",
            "ok" if r["ok"] else "FAIL",
            f"{r['elapsed_s']:.1f}",
            f"{r['goodput_bps']:.0f}",
            r["retx"],
            r["losts"],
        )
        for loss, r in results.items()
    ]
    print_table(
        ["frame loss", "outcome", "time (s)", "goodput (bit/s)", "retransmissions", "LOST reports"],
        rows,
        title="E6b: 2000 B reliable transfer vs injected frame loss (2 hops)",
    )
    # Shape: completes through 20% loss; repair cost grows with loss.
    assert results[0.0]["ok"] and results[0.1]["ok"] and results[0.2]["ok"]
    assert results[0.2]["retx"] > results[0.0]["retx"]
    assert results[0.2]["goodput_bps"] < results[0.0]["goodput_bps"]
