"""E11 — Energy cost per delivered byte across architectures.

Battery life is the binding constraint on "tiny IoT nodes"; this bench
converts the E5 comparison into joules using the TTGO/SX1276 current
model.  Because every stack keeps its radio in continuous RX (as the
real library does), total energy is RX-dominated and similar across
protocols — the differentiators are TX energy (airtime) and, decisively,
energy per *delivered* application byte.

Expected shape: RX floor dominates absolute joules; flooding pays the
most TX energy per delivered byte among the delivering stacks; the star
delivers nothing across the diagonal (infinite J/B); the oracle lower-
bounds the mesh, with the gap = the hello overhead.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.metrics.energy import TTGO_LORA32
from repro.radio.states import RadioState
from repro.topology.placement import grid_positions

POSITIONS = grid_positions(3, 3, spacing_m=100.0)
TRAFFIC = [
    TrafficSpec(src_index=0, dst_index=8, period_s=60.0),
    TrafficSpec(src_index=2, dst_index=6, period_s=60.0),
]
DURATION_S = 2 * 3600.0


def measure(protocol):
    result = run_protocol(
        protocol, POSITIONS, TRAFFIC, duration_s=DURATION_S, seed=4, config=BENCH_CONFIG
    )
    nodes = result.network.nodes
    total_j = 0.0
    tx_j = 0.0
    for node in nodes:
        times = node.radio.state_times()
        total_j += TTGO_LORA32.energy_j(times)
        tx_j += TTGO_LORA32.energy_j({RadioState.TX: times.get(RadioState.TX, 0.0)})
    delivered_bytes = sum(
        rec.size
        for (src, dst), seqs in result.recorder._delivered.items()
        for seq, rec in result.recorder._sent.get((src, dst), {}).items()
        if seq in seqs
    )
    return {
        "protocol": protocol,
        "pdr": result.pdr,
        "total_j": total_j,
        "tx_j": tx_j,
        "delivered_bytes": delivered_bytes,
        "tx_j_per_byte": (tx_j / delivered_bytes) if delivered_bytes else float("inf"),
    }


def test_e11_energy_per_delivered_byte(benchmark):
    protocols = (Protocol.MESH, Protocol.FLOODING, Protocol.STAR, Protocol.ORACLE, Protocol.AODV)
    results = benchmark.pedantic(
        lambda: {p: measure(p) for p in protocols}, rounds=1, iterations=1
    )
    rows = []
    for protocol, r in results.items():
        rows.append(
            (
                protocol.value,
                f"{r['pdr'] * 100:.1f}%",
                f"{r['total_j']:.0f}",
                f"{r['tx_j']:.2f}",
                r["delivered_bytes"],
                f"{r['tx_j_per_byte'] * 1000:.2f}"
                if r["tx_j_per_byte"] != float("inf")
                else "inf",
            )
        )
    print_table(
        ["protocol", "PDR", "total (J)", "TX energy (J)", "delivered B", "TX mJ / delivered B"],
        rows,
        title=f"E11: 9 nodes x {DURATION_S / 3600:.0f} h, two diagonal flows (TTGO @ 14 dBm)",
    )

    mesh = results[Protocol.MESH]
    flood = results[Protocol.FLOODING]
    star = results[Protocol.STAR]
    oracle = results[Protocol.ORACLE]

    # Shape: continuous RX dominates total energy similarly everywhere
    # (within 2x across stacks).
    totals = [r["total_j"] for r in results.values()]
    assert max(totals) < 2 * min(totals)
    # The star delivered nothing across the diagonals.
    assert star["tx_j_per_byte"] == float("inf")
    # Flooding pays more TX energy per delivered byte than the oracle,
    # and the mesh sits between oracle and flooding.
    assert flood["tx_j_per_byte"] > oracle["tx_j_per_byte"]
    assert oracle["tx_j_per_byte"] <= mesh["tx_j_per_byte"] <= flood["tx_j_per_byte"] * 1.6
