#!/usr/bin/env python
"""Performance regression gate for the substrate benchmarks.

Converts pytest-benchmark JSON (``--benchmark-json``) into the repo's
experiment-record schema (:mod:`repro.experiments.export`) and compares a
candidate run against a committed baseline with a *direction-aware* gate:
getting slower by more than the threshold fails, getting faster never
does.  Reporting reuses :mod:`repro.experiments.regression`'s
``Difference``/``ComparisonReport`` machinery so the output matches the
experiment regression tooling.

Usage::

    # produce a baseline from a bench run
    pytest benchmarks/bench_perf_simulator.py --benchmark-only \
        --benchmark-disable-gc --benchmark-json perf.json
    python benchmarks/check_perf_regression.py record \
        --benchmark-json perf.json --out benchmarks/BENCH_perf_baseline.json

    # gate a later run against it (>25% slower on any benchmark fails)
    python benchmarks/check_perf_regression.py check \
        --baseline benchmarks/BENCH_perf_baseline.json \
        --candidate perf.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.experiments.export import ExperimentRecord, export_records, load_records
from repro.experiments.regression import ComparisonReport, Difference

EXPERIMENT_ID = "perf_simulator"
COLUMNS = ["benchmark", "mean_s", "stddev_s", "rounds"]


def _records_from_pytest_benchmark(path: Path) -> List[ExperimentRecord]:
    """One ExperimentRecord holding a row per benchmark in the document."""
    doc = json.loads(path.read_text())
    record = ExperimentRecord(
        experiment_id=EXPERIMENT_ID,
        description="substrate benchmark wall-clock (bench_perf_simulator)",
        parameters={"machine": doc.get("machine_info", {}).get("node", "unknown")},
        columns=list(COLUMNS),
    )
    for bench in sorted(doc.get("benchmarks", []), key=lambda b: b["name"]):
        stats = bench["stats"]
        record.add_row(bench["name"], stats["mean"], stats["stddev"], stats["rounds"])
    return [record]


def _load(path: Path) -> List[ExperimentRecord]:
    """Load either schema: pytest-benchmark JSON or exported records."""
    doc = json.loads(path.read_text())
    if isinstance(doc, dict) and "benchmarks" in doc:
        return _records_from_pytest_benchmark(path)
    return load_records(path)


def _means(records: List[ExperimentRecord]) -> dict:
    means = {}
    for record in records:
        if record.experiment_id != EXPERIMENT_ID:
            continue
        name_col = record.columns.index("benchmark")
        mean_col = record.columns.index("mean_s")
        for row in record.rows:
            means[row[name_col]] = float(row[mean_col])
    return means


def compare_perf(
    baseline: List[ExperimentRecord],
    candidate: List[ExperimentRecord],
    *,
    threshold: float = 0.25,
) -> ComparisonReport:
    """Direction-aware comparison: only slowdowns beyond ``threshold``
    (relative) count as differences."""
    report = ComparisonReport(compared_experiments=1)
    base = _means(baseline)
    cand = _means(candidate)
    for name in base:
        if name not in cand:
            report.differences.append(
                Difference(EXPERIMENT_ID, "missing", f"{name} absent from candidate run")
            )
    for name, base_mean in sorted(base.items()):
        cand_mean = cand.get(name)
        if cand_mean is None:
            continue
        report.compared_cells += 1
        if base_mean > 0 and cand_mean > base_mean * (1.0 + threshold):
            slowdown = cand_mean / base_mean
            report.differences.append(
                Difference(
                    EXPERIMENT_ID,
                    "value",
                    f"{name}: {base_mean * 1e3:.3f} ms -> {cand_mean * 1e3:.3f} ms "
                    f"({slowdown:.2f}x, gate is {1.0 + threshold:.2f}x)",
                )
            )
    return report


def cmd_record(args: argparse.Namespace) -> int:
    records = _records_from_pytest_benchmark(Path(args.benchmark_json))
    path = export_records(records, args.out, metadata={"kind": "perf_baseline"})
    rows = records[0].rows
    print(f"baseline: {len(rows)} benchmark(s) written to {path}")
    for row in rows:
        print(f"  {row[0]}: {row[1] * 1e3:.3f} ms mean over {row[3]} rounds")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to gate against (pass)")
        return 0
    report = compare_perf(
        _load(baseline_path), _load(Path(args.candidate)), threshold=args.threshold
    )
    print(report.format())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="convert a bench run into a committed baseline")
    record.add_argument("--benchmark-json", required=True, help="pytest-benchmark JSON")
    record.add_argument("--out", required=True, help="baseline path to write")
    record.set_defaults(func=cmd_record)

    check = sub.add_parser("check", help="gate a bench run against the baseline")
    check.add_argument("--baseline", required=True)
    check.add_argument("--candidate", required=True, help="pytest-benchmark JSON or baseline schema")
    check.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed relative slowdown before failing (default 0.25)",
    )
    check.set_defaults(func=cmd_check)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
