"""E10 — Proactive (LoRaMesher) vs reactive (AODV-lite) routing.

The design-space question behind the paper's protocol choice: pay hello
airtime all the time (proactive DV) or pay discovery floods when traffic
starts (reactive)?  Both run the same 3x3 grid; we sweep the traffic
regime from "one rare exchange" to "steady many-pair traffic" and
report control airtime, PDR, and first-packet latency.

Expected shape: reactive wins on control cost when traffic is rare (an
idle reactive network is silent; a proactive one beacons forever), but
pays a first-packet latency of a discovery round-trip; as flows and
rates grow, the proactive hello cost is amortised while reactive floods
scale with (flows x rediscoveries).  LoRaMesher's choice matches its
target workload: always-on sensor meshes with steady traffic.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.topology.placement import grid_positions

POSITIONS = grid_positions(3, 3, spacing_m=100.0)

REGIMES = {
    "rare (1 flow @ 30 min)": [TrafficSpec(src_index=0, dst_index=8, period_s=1800.0)],
    "light (2 flows @ 5 min)": [
        TrafficSpec(src_index=0, dst_index=8, period_s=300.0),
        TrafficSpec(src_index=2, dst_index=6, period_s=300.0),
    ],
    "steady (4 flows @ 1 min)": [
        TrafficSpec(src_index=0, dst_index=8, period_s=60.0),
        TrafficSpec(src_index=2, dst_index=6, period_s=60.0),
        TrafficSpec(src_index=1, dst_index=7, period_s=60.0),
        TrafficSpec(src_index=3, dst_index=5, period_s=60.0),
    ],
}

DURATION_S = 4 * 3600.0


def control_airtime(result) -> float:
    """Airtime not spent on probe data: total minus delivered-data share."""
    # Approximate: data frames are the probes (24 B + headers); everything
    # else (hellos / RREQs / RREPs) is control.  We report total airtime
    # and frames instead of a fragile decomposition where possible.
    return result.overhead.airtime_s


def run_regime(name, traffic, protocol, seed):
    return run_protocol(
        protocol,
        POSITIONS,
        traffic,
        duration_s=DURATION_S,
        seed=seed,
        config=BENCH_CONFIG,
        drain_s=300.0,
    )


def test_e10_traffic_regime_sweep(benchmark):
    def sweep():
        out = {}
        for name, traffic in REGIMES.items():
            out[name] = {
                Protocol.MESH: run_regime(name, traffic, Protocol.MESH, seed=5),
                Protocol.AODV: run_regime(name, traffic, Protocol.AODV, seed=5),
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, pair in results.items():
        for protocol, result in pair.items():
            rows.append(
                (
                    name,
                    protocol.value,
                    f"{result.pdr * 100:.1f}%",
                    f"{result.mean_latency_s:.2f}" if result.mean_latency_s else "-",
                    result.overhead.frames_sent,
                    f"{result.overhead.airtime_s:.1f}",
                )
            )
    print_table(
        ["traffic regime", "routing", "PDR", "mean latency (s)", "frames", "airtime (s)"],
        rows,
        title=f"E10: proactive vs reactive on a 3x3 grid, {DURATION_S / 3600:.0f} h",
    )

    rare = results["rare (1 flow @ 30 min)"]
    steady = results["steady (4 flows @ 1 min)"]

    # Shape: with rare traffic, reactive spends (much) less airtime.
    assert rare[Protocol.AODV].overhead.airtime_s < rare[Protocol.MESH].overhead.airtime_s
    # Reactive pays latency: its mean (including discovery stalls and
    # expiry re-discoveries) is at least the mesh's.
    assert rare[Protocol.AODV].mean_latency_s >= rare[Protocol.MESH].mean_latency_s * 0.9
    # With steady traffic both deliver well...
    assert steady[Protocol.MESH].pdr > 0.9
    assert steady[Protocol.AODV].pdr > 0.8
    # ...and the proactive/reactive airtime gap narrows substantially
    # compared to the rare regime.
    def ratio(regime):
        return regime[Protocol.MESH].overhead.airtime_s / max(
            regime[Protocol.AODV].overhead.airtime_s, 1e-9
        )

    assert ratio(rare) > 2.0 * ratio(steady)
