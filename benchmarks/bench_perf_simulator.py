"""P1 — Performance of the simulation substrate itself.

Not a paper experiment: these benches characterise the reproduction's
own machinery (kernel event throughput, medium reception resolution,
whole-stack simulated-seconds per wall-second) so regressions in the
substrate are caught before they silently stretch every other bench.

Unlike the E/F/A benches these use real pytest-benchmark rounds — the
workloads are microseconds-to-milliseconds and benefit from statistics.
"""

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.sim.kernel import Simulator
from repro.topology.placement import grid_positions

BENCH_CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)


def test_perf_kernel_event_throughput(benchmark):
    """Schedule+fire cost of 10k chained events."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 10_000


def test_perf_kernel_timer_churn(benchmark):
    """Arm-and-cancel cost (the protocol's dominant kernel pattern)."""

    def churn():
        sim = Simulator()
        for _ in range(5_000):
            handle = sim.schedule(1.0, lambda: None)
            handle.cancel()
        sim.run(until=2.0)
        return sim.events_fired

    fired = benchmark(churn)
    assert fired == 0  # everything was cancelled


def test_perf_mesh_simulated_hour(benchmark):
    """Whole-stack throughput: one simulated hour of a 9-node mesh."""

    def run_hour():
        net = MeshNetwork.from_positions(
            grid_positions(3, 3, spacing_m=100.0),
            config=BENCH_CONFIG,
            seed=1,
            trace_enabled=False,
        )
        net.run(for_s=3600.0)
        return net.total_frames_sent()

    frames = benchmark(run_hour)
    assert frames > 0


def _bench_net():
    return MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0),
        config=BENCH_CONFIG,
        seed=1,
        trace_enabled=False,
    )


def test_perf_mesh_hour_run_baseline(benchmark):
    """One simulated hour, network construction excluded.

    Baseline half of the store-overhead pair: measures ``net.run`` alone
    so it has the same region boundaries as the stored variant below.
    """

    def setup():
        return (_bench_net(),), {}

    def run(net):
        net.run(for_s=3600.0)
        return net.total_frames_sent()

    frames = benchmark.pedantic(run, setup=setup, rounds=15)
    assert frames > 0


def test_perf_mesh_hour_run_stored(benchmark, tmp_path):
    """The same simulated hour, streamed into a WAL-mode event store.

    Pairs with ``test_perf_mesh_hour_run_baseline``: the delta is the
    recording overhead of persistent observability (frame/route taps,
    hand-encoded JSON rows, SQLite batch commits) over the workload,
    including the end-of-run detach flush.  Store creation and the
    final close (index build + WAL checkpoint) are per-run fixed costs,
    kept in setup/cleanup.  Acceptance budget: < 10% over baseline —
    recorded as a paired entry in BENCH_perf.json.
    """
    from repro.obs.store import EventStore, StoreRecorder

    stores = []

    def setup():
        net = _bench_net()
        store = EventStore(tmp_path / f"bench-{len(stores)}.db")
        stores.append(store)
        recorder = StoreRecorder(store, net).attach()
        return (net, recorder), {}

    def run(net, recorder):
        net.run(for_s=3600.0)
        recorder.detach()  # flushes; every event is durable in the WAL
        return net.total_frames_sent()

    frames = benchmark.pedantic(run, setup=setup, rounds=15)
    events = stores[-1].appended
    for store in stores:
        store.close()
    assert frames > 0
    assert events > frames  # frames plus routes/markers all landed


def test_perf_kernel_hotspot_attribution(benchmark):
    """Where the wall-clock actually goes: the profiler's hot-spot table.

    This is the baseline every future performance PR cites — optimise
    the handlers at the top of this table, re-run, and compare shares.
    """
    from repro.obs import KernelProfiler

    def run_profiled():
        net = MeshNetwork.from_positions(
            grid_positions(3, 3, spacing_m=100.0),
            config=BENCH_CONFIG,
            seed=1,
            trace_enabled=False,
        )
        profiler = KernelProfiler().attach(net.sim)
        net.run(for_s=3600.0)
        profiler.detach()
        return profiler

    profiler = benchmark.pedantic(run_profiled, rounds=1, iterations=1)
    print()
    print(profiler.format(limit=12))
    spots = profiler.table()
    assert spots, "a simulated hour must execute events"
    assert profiler.total_events == sum(s.events for s in spots)
    # The table is sorted hottest-first.
    totals = [s.total_s for s in spots]
    assert totals == sorted(totals, reverse=True)


def test_perf_medium_resolution_dense_cell(benchmark):
    """Reception resolution with 16 listeners per frame."""
    from repro.medium.channel import Medium
    from repro.phy.link import LinkBudget
    from repro.phy.modulation import LoRaParams
    from repro.phy.pathloss import LogDistancePathLoss
    from repro.radio.driver import Radio
    from repro.topology.placement import ring_positions

    def run_cell():
        sim = Simulator()
        medium = Medium(sim, LinkBudget(LogDistancePathLoss()))
        params = LoRaParams()
        radios = [
            Radio(sim, medium, i + 1, pos, params)
            for i, pos in enumerate(ring_positions(16, radius_m=50.0))
        ]
        for radio in radios:
            radio.start_receive()
        # 50 sequential frames, each resolved against 15 listeners.
        for i in range(50):
            radios[i % 16].transmit(bytes(32))
            sim.run(until=sim.now + 1.0)
        return sum(r.frames_received for r in radios)

    received = benchmark(run_cell)
    assert received == 50 * 15
