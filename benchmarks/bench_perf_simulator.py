"""P1 — Performance of the simulation substrate itself.

Not a paper experiment: these benches characterise the reproduction's
own machinery (kernel event throughput, medium reception resolution,
whole-stack simulated-seconds per wall-second) so regressions in the
substrate are caught before they silently stretch every other bench.

Unlike the E/F/A benches these use real pytest-benchmark rounds — the
workloads are microseconds-to-milliseconds and benefit from statistics.
"""

from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.sim.kernel import Simulator
from repro.topology.placement import grid_positions

BENCH_CONFIG = MesherConfig(hello_period_s=60.0, route_timeout_s=300.0, purge_period_s=30.0)


def test_perf_kernel_event_throughput(benchmark):
    """Schedule+fire cost of 10k chained events."""

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 10_000


def test_perf_kernel_timer_churn(benchmark):
    """Arm-and-cancel cost (the protocol's dominant kernel pattern)."""

    def churn():
        sim = Simulator()
        for _ in range(5_000):
            handle = sim.schedule(1.0, lambda: None)
            handle.cancel()
        sim.run(until=2.0)
        return sim.events_fired

    fired = benchmark(churn)
    assert fired == 0  # everything was cancelled


def test_perf_mesh_simulated_hour(benchmark):
    """Whole-stack throughput: one simulated hour of a 9-node mesh."""

    def run_hour():
        net = MeshNetwork.from_positions(
            grid_positions(3, 3, spacing_m=100.0),
            config=BENCH_CONFIG,
            seed=1,
            trace_enabled=False,
        )
        net.run(for_s=3600.0)
        return net.total_frames_sent()

    frames = benchmark(run_hour)
    assert frames > 0


def _bench_net():
    return MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0),
        config=BENCH_CONFIG,
        seed=1,
        trace_enabled=False,
    )


def test_perf_mesh_hour_run_baseline(benchmark):
    """One simulated hour, network construction excluded.

    Baseline half of the store-overhead pair: measures ``net.run`` alone
    so it has the same region boundaries as the stored variant below.
    """

    def setup():
        return (_bench_net(),), {}

    def run(net):
        net.run(for_s=3600.0)
        return net.total_frames_sent()

    frames = benchmark.pedantic(run, setup=setup, rounds=15)
    assert frames > 0


def test_perf_mesh_hour_run_stored(benchmark, tmp_path):
    """The same simulated hour, streamed into a WAL-mode event store.

    Pairs with ``test_perf_mesh_hour_run_baseline``: the delta is the
    recording overhead of persistent observability (frame/route taps,
    hand-encoded JSON rows, SQLite batch commits) over the workload,
    including the end-of-run detach flush.  Store creation and the
    final close (index build + WAL checkpoint) are per-run fixed costs,
    kept in setup/cleanup.  Acceptance budget: < 10% over baseline —
    recorded as a paired entry in BENCH_perf.json.
    """
    from repro.obs.store import EventStore, StoreRecorder

    stores = []

    def setup():
        net = _bench_net()
        store = EventStore(tmp_path / f"bench-{len(stores)}.db")
        stores.append(store)
        recorder = StoreRecorder(store, net).attach()
        return (net, recorder), {}

    def run(net, recorder):
        net.run(for_s=3600.0)
        recorder.detach()  # flushes; every event is durable in the WAL
        return net.total_frames_sent()

    frames = benchmark.pedantic(run, setup=setup, rounds=15)
    events = stores[-1].appended
    for store in stores:
        store.close()
    assert frames > 0
    assert events > frames  # frames plus routes/markers all landed


def test_perf_stream_workload(benchmark):
    """Stream/flow plane throughput: 200 mixed flows on a BW500 mesh.

    Exercises the full connection stack per message — stream framing,
    sliding-window release, reliable singles with adaptive RTO, ACK
    bookkeeping — on a 4x4 grid sized so every flow completes.  Network
    construction and route convergence stay in setup; the measured
    region is the two simulated hours the workload runs for."""
    from repro.phy.modulation import Bandwidth, LoRaParams
    from repro.phy.regions import UNRESTRICTED
    from repro.workload.flows import FlowEngine, build_workload

    config = MesherConfig(
        lora=LoRaParams(bandwidth=Bandwidth.BW500),
        region=UNRESTRICTED,
        hello_period_s=120.0,
        route_timeout_s=7200.0,
        purge_period_s=900.0,
        send_queue_capacity=64,
        stream_window=2,
    )

    def setup():
        net = MeshNetwork.from_positions(
            grid_positions(4, 4, spacing_m=60.0),
            config=config,
            seed=9,
            trace_enabled=False,
        )
        assert net.run_until_converged(timeout_s=7200.0) is not None
        engine = FlowEngine(net)
        engine.add_flows(
            build_workload(
                "mixed", net.addresses, 200, seed=9,
                messages=3, payload_bytes=32,
                window_s=3600.0, interval_s=60.0,
            )
        )
        engine.start()
        return (net, engine), {}

    def run(net, engine):
        net.run(for_s=7200.0)
        return engine.summary()

    summary = benchmark.pedantic(run, setup=setup, rounds=3)
    assert summary.completed == 200
    assert summary.failed == 0


def test_perf_kernel_hotspot_attribution(benchmark):
    """Where the wall-clock actually goes: the profiler's hot-spot table.

    This is the baseline every future performance PR cites — optimise
    the handlers at the top of this table, re-run, and compare shares.
    """
    from repro.obs import KernelProfiler

    def run_profiled():
        net = MeshNetwork.from_positions(
            grid_positions(3, 3, spacing_m=100.0),
            config=BENCH_CONFIG,
            seed=1,
            trace_enabled=False,
        )
        profiler = KernelProfiler().attach(net.sim)
        net.run(for_s=3600.0)
        profiler.detach()
        return profiler

    profiler = benchmark.pedantic(run_profiled, rounds=1, iterations=1)
    print()
    print(profiler.format(limit=12))
    spots = profiler.table()
    assert spots, "a simulated hour must execute events"
    assert profiler.total_events == sum(s.events for s in spots)
    # The table is sorted hottest-first.
    totals = [s.total_s for s in spots]
    assert totals == sorted(totals, reverse=True)


def _hello_stream(n_sources=8, rows=62, generations=40):
    """A synthetic hello workload: ``n_sources`` neighbours re-advertise
    ``rows``-row tables, with metrics drifting every other generation so
    the stream mixes no-op merges with real updates (the convergence
    traffic shape)."""
    from repro.net.packets import RoutingEntry

    packets = []
    for gen in range(generations):
        for src in range(n_sources):
            base = 0x0100 + src * rows
            bump = 1 if gen % 4 == 2 else 0
            entries = tuple(
                RoutingEntry.trusted(base + i, 3 + bump + (i % 3), 0) for i in range(rows)
            )
            packets.append((2 + src, entries))
    return packets


def _bench_merge_throughput(benchmark, impl):
    from repro.net.routing_table import make_routing_table

    stream = _hello_stream()
    rows_merged = len(stream) * 62

    def setup():
        table = make_routing_table(1, route_timeout=1e9, max_metric=64, impl=impl)
        return (table,), {}

    def run(table):
        now = 0.0
        for src, entries in stream:
            now += 1.0
            table.process_hello(src, entries, now)
        return table.size

    size = benchmark.pedantic(run, setup=setup, rounds=20)
    benchmark.extra_info["rows_merged"] = rows_merged
    # 62 advertised rows plus the direct route per source.
    assert size == 8 * 63


def test_perf_hello_merge_throughput_scalar(benchmark, monkeypatch):
    """DV merge throughput, scalar reference (rows merged per second =
    ``rows_merged`` extra-info / measured time)."""
    # An ambient REPRO_ROUTING_IMPL would silently make both paired
    # benches measure the same implementation.
    monkeypatch.delenv("REPRO_ROUTING_IMPL", raising=False)
    _bench_merge_throughput(benchmark, "scalar")


def test_perf_hello_merge_throughput_columnar(benchmark, monkeypatch):
    """DV merge throughput through the columnar vectorized path.

    Pairs with the scalar variant above; the ratio is the vectorization
    speedup cited in BENCH_perf.json."""
    import pytest

    pytest.importorskip("numpy")
    monkeypatch.delenv("REPRO_ROUTING_IMPL", raising=False)
    _bench_merge_throughput(benchmark, "columnar")


def test_perf_medium_resolution_dense_cell(benchmark):
    """Reception resolution with 16 listeners per frame."""
    from repro.medium.channel import Medium
    from repro.phy.link import LinkBudget
    from repro.phy.modulation import LoRaParams
    from repro.phy.pathloss import LogDistancePathLoss
    from repro.radio.driver import Radio
    from repro.topology.placement import ring_positions

    def run_cell():
        sim = Simulator()
        medium = Medium(sim, LinkBudget(LogDistancePathLoss()))
        params = LoRaParams()
        radios = [
            Radio(sim, medium, i + 1, pos, params)
            for i, pos in enumerate(ring_positions(16, radius_m=50.0))
        ]
        for radio in radios:
            radio.start_receive()
        # 50 sequential frames, each resolved against 15 listeners.
        for i in range(50):
            radios[i % 16].transmit(bytes(32))
            sim.run(until=sim.now + 1.0)
        return sum(r.frames_received for r in radios)

    received = benchmark(run_cell)
    assert received == 50 * 15
