"""E5 — LoRaMesher vs the alternatives it replaces.

Paper artifact: the motivation section's comparison — LoRaWAN's star
cannot reach out-of-range nodes, flooding wastes airtime, and LoRaMesher
routes.  All four stacks (mesh / flooding / star / oracle) run the same
scenario on the identical substrate.

Expected shape: mesh and flooding both deliver end-to-end where the star
gets 0%; the mesh spends less airtime per delivered byte than flooding;
the oracle's PDR upper-bounds the mesh within a few points.
"""

from benchmarks.conftest import BENCH_CONFIG, export_bench_json, verify_kwargs
from repro.experiments.export import run_result_summary
from repro.experiments.report import print_table
from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.topology.placement import grid_positions


def scenario():
    # 3x3 grid at 100 m: corner-to-corner needs multiple hops; the star's
    # central gateway reaches everyone's neighbour but corners cannot
    # reach each other directly.
    positions = grid_positions(3, 3, spacing_m=100.0)
    traffic = [
        TrafficSpec(src_index=0, dst_index=8, period_s=60.0),  # corner to corner
        TrafficSpec(src_index=2, dst_index=6, period_s=60.0),  # other diagonal
    ]
    return positions, traffic


def run_all(seed: int):
    positions, traffic = scenario()
    out = {}
    for protocol in Protocol:
        out[protocol] = run_protocol(
            protocol,
            positions,
            traffic,
            duration_s=1800.0,
            seed=seed,
            config=BENCH_CONFIG,
            sample_period_s=300.0,
            # Invariant auditing only applies to the mesh's routing state.
            **(verify_kwargs() if protocol is Protocol.MESH else {}),
        )
    return out


def test_e5_protocol_comparison(benchmark):
    results = benchmark.pedantic(lambda: run_all(seed=9), rounds=1, iterations=1)
    rows = []
    for protocol, result in results.items():
        rows.append(
            (
                protocol.value,
                f"{result.pdr * 100:.1f}%",
                f"{result.mean_latency_s:.2f}" if result.mean_latency_s else "-",
                result.recorder.total_duplicates(),
                result.overhead.frames_sent,
                f"{result.overhead.airtime_s:.1f}",
                f"{result.overhead.airtime_per_delivered_byte_ms:.2f}"
                if result.overhead.airtime_per_delivered_byte_ms != float("inf")
                else "inf",
            )
        )
    print_table(
        ["protocol", "PDR", "latency (s)", "dup", "frames", "airtime (s)", "ms/delivered B"],
        rows,
        title="E5: 3x3 grid, two diagonal flows, 30 min (identical substrate)",
    )

    mesh, flood = results[Protocol.MESH], results[Protocol.FLOODING]
    star, oracle = results[Protocol.STAR], results[Protocol.ORACLE]

    # Shape: who wins and why.
    assert mesh.pdr > 0.9, "mesh must deliver across the grid"
    # Flooding delivers most packets but loses some to flood-storm
    # collisions — which is exactly why routing beats it.
    assert flood.pdr > 0.5, "flooding collapsed entirely"
    assert mesh.pdr >= flood.pdr, "routed delivery must not trail flooding"
    assert star.pdr < mesh.pdr, "corner-to-corner exceeds one gateway hop"
    assert oracle.pdr >= mesh.pdr - 0.05, "oracle upper-bounds the mesh"
    # Flooding pays more airtime per delivered byte than routed mesh data;
    # the mesh's extra hellos are amortised over the run.
    assert (
        flood.overhead.airtime_per_delivered_byte_ms
        > oracle.overhead.airtime_per_delivered_byte_ms
    )
    # And flooding puts strictly more copies of each packet on the air.
    assert flood.overhead.frames_sent > oracle.overhead.frames_sent

    # Machine-readable export: every protocol's scalar row plus its
    # sampled PDR/airtime trajectory over the run.
    document = {
        "bench": "e5_baselines",
        "runs": {p.value: run_result_summary(r) for p, r in results.items()},
    }
    for summary in document["runs"].values():
        assert len(summary["timeseries"]["samples"]) >= 2
    path = export_bench_json("e5_baselines", document)
    print(f"\ntime-series document: {path}")
