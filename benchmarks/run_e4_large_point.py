"""Standalone E4 large-N point runner with progress logging.

The n=5000 point takes hours on one core; running it inside pytest gives
no visibility and no partial result.  This script runs the identical
measurement (`measure_large` semantics: same placement, same config,
same convergence loop granularity) but logs a progress line per
convergence check and writes the final row as JSON, so a long run can be
watched — and its trajectory kept — from outside.

Usage::

    PYTHONPATH=src python benchmarks/run_e4_large_point.py \
        --n 5000 --seed 5 --out /tmp/e4_n5000.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_e4_scalability import (
    LARGE_N_CONFIG,
    XL_N_CONFIG,
    connected_placement_large,
)
from repro.net.api import MeshNetwork


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--timeout-s", type=float, default=86400.0)
    parser.add_argument("--check-period-s", type=float, default=120.0)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--config",
        choices=("large", "xl"),
        default=None,
        help="mesher profile (default: xl for n>1000, large otherwise)",
    )
    args = parser.parse_args()

    profile = args.config or ("xl" if args.n > 1000 else "large")
    config = XL_N_CONFIG if profile == "xl" else LARGE_N_CONFIG

    t0 = time.perf_counter()
    positions, stats = connected_placement_large(args.n, args.seed)
    print(
        f"placement: n={args.n} seed={args.seed} diameter={stats.diameter} "
        f"({time.perf_counter() - t0:.1f}s)",
        flush=True,
    )

    net = MeshNetwork.from_positions(
        positions, config=config, seed=args.seed, trace_enabled=False
    )
    start = time.perf_counter()
    convergence = None
    sim_start = net.sim.now
    deadline = sim_start + args.timeout_s
    needed = args.n - 1
    while net.sim.now < deadline:
        net.sim.run(until=min(net.sim.now + args.check_period_s, deadline))
        if net.converged():
            convergence = net.sim.now - sim_start
            break
        sizes = sorted(node.table.size for node in net.nodes)
        print(
            f"t={net.sim.now:8.0f}s wall={time.perf_counter() - start:7.1f}s "
            f"frames={net.total_frames_sent():>9} "
            f"table min/med/max={sizes[0]}/{sizes[len(sizes) // 2]}/{sizes[-1]} "
            f"(need {needed})",
            flush=True,
        )
    wall_s = time.perf_counter() - start

    result = {
        "n": args.n,
        "seed": args.seed,
        "config": profile,
        "diameter": stats.diameter,
        "convergence_s": convergence,
        "wall_s": wall_s,
        "control_frames": net.total_frames_sent(),
        "control_bytes": net.total_bytes_sent(),
        "airtime_s": net.total_airtime_s(),
    }
    print(json.dumps(result, indent=2), flush=True)
    if args.out is not None:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
    return 0 if convergence is not None else 1


if __name__ == "__main__":
    raise SystemExit(main())
