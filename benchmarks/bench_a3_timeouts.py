"""A3 — Ablation: route timeout and next-hop stability.

The route timeout trades repair speed (E8) against stability: a timeout
close to the hello period makes routes flap whenever a couple of hellos
are lost to collisions.  We measure next-hop churn on a stable mesh and
the false-expiry rate as the timeout approaches the hello period.

Expected shape: timeouts of >= 3-4 hello periods produce essentially no
churn; dropping towards 1-2 periods makes healthy routes expire.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.placement import grid_positions
from repro.trace.events import EventKind


def run_timeout(multiple: float, seed: int):
    hello = BENCH_CONFIG.hello_period_s
    config = BENCH_CONFIG.replace(
        route_timeout_s=multiple * hello,
        purge_period_s=hello / 4,
    )
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0), config=config, seed=seed
    )
    if net.run_until_converged(timeout_s=3600.0) is None:
        return None
    net.trace.clear()
    hours = 2.0
    net.run(for_s=hours * 3600.0)
    removed = net.trace.count(EventKind.ROUTE_REMOVED)
    updated = net.trace.count(EventKind.ROUTE_UPDATED)
    return {
        "multiple": multiple,
        "false_expiries": removed,  # topology is static: every removal is false
        "route_updates": updated,
        "coverage_after": net.coverage(),
    }


def test_a3_route_timeout_stability(benchmark):
    multiples = (1.5, 2.0, 4.0, 8.0)
    results = benchmark.pedantic(
        lambda: [run_timeout(m, seed=17) for m in multiples], rounds=1, iterations=1
    )
    rows = [
        (
            f"{r['multiple']:.1f}x",
            f"{r['multiple'] * BENCH_CONFIG.hello_period_s:.0f}",
            r["false_expiries"],
            r["route_updates"],
            f"{r['coverage_after'] * 100:.1f}%",
        )
        for r in results
        if r is not None
    ]
    print_table(
        ["timeout (hello periods)", "timeout (s)", "false expiries", "route updates", "coverage after 2 h"],
        rows,
        title="A3: route-timeout ablation on a static 3x3 grid",
    )

    by_multiple = {r["multiple"]: r for r in results if r is not None}
    # Shape: tight timeouts flap; generous ones are stable.
    assert by_multiple[1.5]["false_expiries"] > by_multiple[8.0]["false_expiries"]
    assert by_multiple[8.0]["false_expiries"] == 0
    # Coverage recovers / stays near-complete with sane timeouts.
    assert by_multiple[4.0]["coverage_after"] > 0.95
    assert by_multiple[8.0]["coverage_after"] == 1.0
