"""A1 — Ablation: hello period.

The central configuration trade-off of a beaconing DV protocol: short
hello periods converge fast and repair quickly but burn airtime; long
periods are cheap but slow.  DESIGN.md calls this knob out; the firmware
ships 120 s.

Expected shape: convergence time scales roughly linearly with the hello
period while control airtime scales inversely.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.experiments.sweep import repeat_seeds
from repro.net.api import MeshNetwork
from repro.topology.placement import line_positions


def run_period(period_s: float, seed: int):
    config = BENCH_CONFIG.replace(
        hello_period_s=period_s,
        route_timeout_s=max(5 * period_s, 300.0),
        purge_period_s=period_s / 2,
    )
    net = MeshNetwork.from_positions(line_positions(5), config=config, seed=seed, trace_enabled=False)
    convergence = net.run_until_converged(timeout_s=4 * 3600.0, check_period_s=5.0)
    if convergence is None:
        return None
    # Normalise control cost to a rate: airtime per simulated hour.
    airtime_rate = net.total_airtime_s() / (net.sim.now / 3600.0)
    return convergence, airtime_rate


def test_a1_hello_period_tradeoff(benchmark):
    periods = (30.0, 60.0, 120.0, 300.0)

    def sweep():
        out = {}
        for period in periods:
            mean_conv, ci, raw = repeat_seeds(
                lambda seed: (run_period(period, seed) or (None,))[0], [1, 2, 3]
            )
            sample = run_period(period, 1)
            out[period] = (mean_conv, ci, sample[1] if sample else float("nan"))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (f"{p:.0f}", f"{conv:.0f}", f"{ci:.0f}", f"{rate:.2f}")
        for p, (conv, ci, rate) in results.items()
    ]
    print_table(
        ["hello period (s)", "convergence (s)", "95% CI", "control airtime (s/h)"],
        rows,
        title="A1: hello-period ablation on a 5-node line (3 seeds)",
    )

    convs = [results[p][0] for p in periods]
    rates = [results[p][2] for p in periods]
    # Shape: slower beacons -> slower convergence, less control airtime.
    assert convs[0] < convs[-1]
    assert rates[0] > rates[-1]
    # Roughly linear in the period: 10x period within 2x-30x convergence.
    ratio = convs[-1] / convs[0]
    assert 2.0 < ratio < 30.0
