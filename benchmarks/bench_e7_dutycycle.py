"""E7 — EU868 duty-cycle compliance.

Paper artifact: the regulatory envelope the library must operate in
(1% duty cycle per device in the 868 MHz sub-band).  We run a 3x3 grid
under increasing traffic intensity and report each node's sub-band
utilisation, asserting the pacing keeps every node — including the
forwarding-heavy centre — under the limit.

Expected shape: utilisation grows with offered load, routers sit above
leaf nodes, and nobody exceeds 1%.
"""

import random

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.net.api import MeshNetwork
from repro.topology.placement import grid_positions
from repro.workload.traffic import PeriodicSender


def run_intensity(period_s: float, seed: int):
    net = MeshNetwork.from_positions(
        grid_positions(3, 3, spacing_m=100.0), config=BENCH_CONFIG, seed=seed, trace_enabled=False
    )
    net.run_until_converged(timeout_s=3600.0)
    centre = net.node(net.addresses[4])
    senders = [
        PeriodicSender(
            net.sim, node.address, centre.address, node.send_datagram,
            period_s=period_s, payload_size=32, rng=random.Random(node.address + seed),
        )
        for node in net.nodes
        if node is not centre
    ]
    net.run(for_s=3 * 3600.0)
    for sender in senders:
        sender.stop()
    utilisations = {n.name: n.duty.window_utilisation(net.sim.now) for n in net.nodes}
    deferrals = sum(n.stats.duty_deferrals for n in net.nodes)
    forwarded = {n.name: n.stats.data_forwarded for n in net.nodes}
    return net, utilisations, deferrals, forwarded


def test_e7_duty_cycle_compliance(benchmark):
    periods = (300.0, 60.0, 20.0)
    results = benchmark.pedantic(
        lambda: {p: run_intensity(p, seed=6) for p in periods}, rounds=1, iterations=1
    )
    rows = []
    for period, (net, utilisations, deferrals, _forwarded) in results.items():
        peak = max(utilisations.values())
        mean_u = sum(utilisations.values()) / len(utilisations)
        rows.append(
            (
                f"{period:.0f}",
                f"{mean_u * 100:.3f}%",
                f"{peak * 100:.3f}%",
                max(utilisations, key=utilisations.get),
                deferrals,
                "PASS" if peak <= 0.01 else "VIOLATION",
            )
        )
    print_table(
        ["report period (s)", "mean duty", "peak duty", "busiest node", "deferrals", "EU868 1%"],
        rows,
        title="E7: 8 sensors -> centre on a 3x3 grid, 3 h (duty over trailing hour)",
    )

    # Shape assertions.
    peaks = {p: max(u.values()) for p, (_, u, _, _) in results.items()}
    assert all(peak <= 0.01 + 1e-9 for peak in peaks.values()), "duty-cycle violation"
    assert peaks[20.0] > peaks[300.0], "utilisation must grow with offered load"
    # The busiest node is one that forwards for others (in this grid the
    # corner->centre traffic routes through the edge-midpoint nodes).
    _, utilisations, _, forwarded = results[60.0]
    busiest = max(utilisations, key=utilisations.get)
    assert forwarded[busiest] > 0, f"busiest node {busiest} forwarded nothing"
