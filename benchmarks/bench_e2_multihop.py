"""E2 — Multi-hop data delivery between two end nodes.

Paper artifact: the demo's live exchange — two nodes communicate data
packets while the other nodes operate as routers.  We sweep the line
length (1–5 hops between the endpoints) and report PDR, mean latency,
and the forwarding work done by the intermediate routers.

Expected shape: PDR stays high at every hop count (the mesh works), and
latency grows roughly linearly with hop count (one frame airtime plus
queueing per hop).
"""

import pytest

from benchmarks.conftest import BENCH_CONFIG, export_bench_json
from repro.experiments.export import run_result_summary
from repro.experiments.report import print_table
from repro.experiments.runner import Protocol, TrafficSpec, run_protocol
from repro.topology.placement import line_positions


def run_hops(hops: int, seed: int):
    positions = line_positions(hops + 1)
    traffic = [
        TrafficSpec(src_index=0, dst_index=hops, period_s=60.0),
        TrafficSpec(src_index=hops, dst_index=0, period_s=60.0),
    ]
    return run_protocol(
        Protocol.MESH, positions, traffic, duration_s=1800.0, seed=seed, config=BENCH_CONFIG,
        sample_period_s=300.0,
    )


def test_e2_pdr_and_latency_vs_hops(benchmark):
    results = benchmark.pedantic(
        lambda: {hops: run_hops(hops, seed=7) for hops in (1, 2, 3, 4, 5)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for hops, result in results.items():
        forwarded = sum(
            n.stats.data_forwarded for n in result.network.nodes
        )
        rows.append(
            (
                hops,
                f"{result.pdr * 100:.1f}%",
                f"{result.mean_latency_s:.2f}" if result.mean_latency_s else "-",
                forwarded,
                result.overhead.frames_sent,
            )
        )
    print_table(
        ["hops", "PDR", "mean latency (s)", "router forwards", "total frames"],
        rows,
        title="E2: end-to-end delivery across the line (30 min, 60 s probes each way)",
    )

    # Shape: high PDR at every distance; latency grows with hops.
    for hops, result in results.items():
        assert result.pdr > 0.9, f"{hops}-hop PDR collapsed: {result.pdr}"
    assert results[5].mean_latency_s > results[1].mean_latency_s
    # Routers really forwarded: ~ (hops-1) forwards per delivered probe pair.
    assert sum(n.stats.data_forwarded for n in results[3].network.nodes) > 0

    # Machine-readable export with the sampled time series per hop count.
    document = {
        "bench": "e2_multihop",
        "runs": {str(hops): run_result_summary(r) for hops, r in results.items()},
    }
    for summary in document["runs"].values():
        series = summary["timeseries"]["samples"]
        assert len(series) >= 2
        # Network frame counters only move forward over the trajectory.
        frames = [point["values"]["repro_network_frames_total"] for point in series]
        assert frames == sorted(frames)
    path = export_bench_json("e2_multihop", document)
    print(f"\ntime-series document: {path}")
