"""F1 — Figure: single-link delivery vs distance, per spreading factor.

Paper artifact: the range/robustness trade-off that makes LoRa meshes
necessary in the first place — at SF7 the demo's nodes only reach
~135 m, so a building-scale deployment *must* route.  We sweep the
distance of a single link for SF7/SF9/SF12 and plot the delivery curve
(the classic LoRa range figure), then derive each SF's usable range.

Expected shape: a sharp sensitivity cliff per SF, moving outward ~2x in
distance for every ~2 SF steps, paid for with ~4x airtime.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.report import print_table
from repro.medium.channel import Medium
from repro.phy.airtime import time_on_air
from repro.phy.link import LinkBudget
from repro.phy.modulation import LoRaParams, SpreadingFactor
from repro.phy.pathloss import LogDistancePathLoss
from repro.radio.driver import Radio
from repro.sim.kernel import Simulator

SFS = (SpreadingFactor.SF7, SpreadingFactor.SF9, SpreadingFactor.SF12)
DISTANCES = tuple(range(25, 1001, 25))
FRAMES_PER_POINT = 20


def delivery_at(distance: float, sf: SpreadingFactor) -> float:
    """Fraction of frames delivered over a single link at this distance."""
    params = LoRaParams(spreading_factor=sf)
    sim = Simulator()
    medium = Medium(sim, LinkBudget(LogDistancePathLoss()))
    tx = Radio(sim, medium, 1, (0.0, 0.0), params)
    rx = Radio(sim, medium, 2, (distance, 0.0), params)
    rx.start_receive()
    got = []
    rx.on_receive = lambda frame: got.append(frame.crc_ok)
    for _ in range(FRAMES_PER_POINT):
        tx.transmit(bytes(24))
        sim.run(until=sim.now + 5.0)
    return sum(got) / FRAMES_PER_POINT


def sweep():
    return {
        sf.name: [(d, delivery_at(d, sf)) for d in DISTANCES] for sf in SFS
    }


def usable_range(curve) -> float:
    """Largest swept distance still delivering >= 95%."""
    good = [d for d, pdr in curve if pdr >= 0.95]
    return max(good) if good else 0.0


def test_f1_range_per_spreading_factor(benchmark):
    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        ascii_plot(
            curves,
            title="F1: single-link delivery ratio vs distance (log-distance channel)",
            x_label="distance (m)",
            y_label="delivery ratio",
            width=70,
            height=14,
        )
    )
    rows = []
    for sf in SFS:
        rng = usable_range(curves[sf.name])
        toa = time_on_air(24, LoRaParams(spreading_factor=sf)) * 1000
        rows.append((sf.name, f"{rng:.0f}", f"{toa:.1f}"))
    print_table(
        ["SF", "usable range (m, >=95% PDR)", "24 B frame ToA (ms)"],
        rows,
        title="F1: derived usable range per SF",
    )

    ranges = {sf: usable_range(curves[sf.name]) for sf in SFS}
    airtimes = {
        sf: time_on_air(24, LoRaParams(spreading_factor=sf)) for sf in SFS
    }
    # Shape: higher SF reaches strictly farther and costs strictly more.
    assert ranges[SpreadingFactor.SF7] < ranges[SpreadingFactor.SF9] < ranges[SpreadingFactor.SF12]
    assert airtimes[SpreadingFactor.SF7] < airtimes[SpreadingFactor.SF9] < airtimes[SpreadingFactor.SF12]
    # SF7's cliff sits near the 135 m the rest of the suite relies on.
    assert 100 <= ranges[SpreadingFactor.SF7] <= 150
    # The deterministic channel has a sharp cliff: curves are monotone
    # non-increasing in distance.
    for curve in curves.values():
        pdrs = [pdr for _, pdr in curve]
        assert all(b <= a for a, b in zip(pdrs, pdrs[1:]))
