"""E4 — Scalability of distance-vector dissemination.

Paper artifact: LoRaMesher targets networks of "tiny IoT nodes"; this
bench characterises how convergence time and control overhead grow with
network size on random connected placements.

Expected shape: convergence time grows with network diameter (roughly
diameter x hello period), and control bytes grow superlinearly in N
(every node advertises every other node).
"""

import random
import time

import pytest

from benchmarks.conftest import BENCH_CONFIG, BENCH_WORKERS
from repro.experiments.report import print_table
from repro.experiments.sweep import run_parallel
from repro.net.api import MeshNetwork
from repro.net.config import MesherConfig
from repro.phy.link import LinkBudget
from repro.phy.modulation import Bandwidth, LoRaParams
from repro.phy.pathloss import LogDistancePathLoss
from repro.phy.regions import UNRESTRICTED
from repro.topology.graphs import connectivity_graph, graph_stats
from repro.topology.placement import random_positions

#: Profile for the 100..1000-node points.  The default bench profile
#: (EU868, BW125) cannot scale there: a 1000-entry table beacons as 17
#: frames per hello, which the 1 % duty cycle throttles into uselessness
#: and 0.4 s BW125 frames saturate the channel outright.  BW500 cuts
#: time-on-air 4x, UNRESTRICTED lifts the regulatory throttle, and
#: ``max_metric=64`` admits the 35+-hop diameters these sparse
#: placements produce (the default 16 would make full convergence
#: impossible, silently).
LARGE_N_CONFIG = MesherConfig(
    lora=LoRaParams(bandwidth=Bandwidth.BW500),
    region=UNRESTRICTED,
    hello_period_s=120.0,
    route_timeout_s=7200.0,
    purge_period_s=900.0,
    max_metric=64,
    send_queue_capacity=64,
)

#: Profile for the 5000-node point.  Two LARGE_N_CONFIG limits silently
#: make convergence *impossible* at that scale: the seed-5 placement has
#: an 89-hop diameter (> max_metric=64, so the far rim can never install
#: routes), and a 5000-entry table beacons as 81 ROUTING frames — past
#: the 64-slot send queue, which would drop the same tail chunks every
#: period.  The wire metric is u8, so 192 leaves cold-start transients
#: headroom; everything else stays identical to LARGE_N_CONFIG.
XL_N_CONFIG = MesherConfig(
    lora=LoRaParams(bandwidth=Bandwidth.BW500),
    region=UNRESTRICTED,
    hello_period_s=120.0,
    route_timeout_s=7200.0,
    purge_period_s=900.0,
    max_metric=192,
    send_queue_capacity=128,
)


def _connected_placement(n: int, seed: int, config, side_scale: float):
    budget = LinkBudget(LogDistancePathLoss())
    rng = random.Random(seed)
    side = side_scale * max(2.0, (n / 2.0) ** 0.5)
    for attempt in range(50):
        # The attempt budget scales with n: rejection sampling near the
        # packing density needs ~constant draws *per node*, so the
        # default 10k total cap (fine up to n=1000) starves n=5000.
        # The cap never alters the draw sequence, so placements for
        # small n are unchanged.
        positions = random_positions(
            n,
            width_m=side,
            height_m=side,
            rng=rng,
            min_separation_m=30.0,
            max_attempts=max(10_000, 20 * n),
        )
        graph = connectivity_graph(positions, budget, config.lora)
        stats = graph_stats(graph)
        if stats.connected:
            return positions, stats
    raise RuntimeError(f"no connected {n}-node placement found")


def connected_placement(n: int, seed: int):
    """A random placement that is guaranteed radio-connected."""
    return _connected_placement(n, seed, BENCH_CONFIG, side_scale=110.0)


def connected_placement_large(n: int, seed: int):
    """Like :func:`connected_placement` but scaled to BW500's shorter
    range (70 m vs 137 m), keeping mean degree near the connectivity
    threshold — the sparsest (and therefore cheapest) placements that
    still converge."""
    return _connected_placement(n, seed, LARGE_N_CONFIG, side_scale=66.0)


def measure(n: int, seed: int):
    positions, stats = connected_placement(n, seed)
    net = MeshNetwork.from_positions(positions, config=BENCH_CONFIG, seed=seed, trace_enabled=False)
    convergence = net.run_until_converged(timeout_s=7200.0, check_period_s=10.0)
    return {
        "n": n,
        "diameter": stats.diameter,
        "convergence_s": convergence,
        "control_frames": net.total_frames_sent(),
        "control_bytes": net.total_bytes_sent(),
        "airtime_s": net.total_airtime_s(),
    }


def measure_large(n: int, seed: int, config: MesherConfig = LARGE_N_CONFIG):
    """One large-N point under ``config`` (default
    :data:`LARGE_N_CONFIG`), with wall-clock.  The placement always uses
    LARGE_N_CONFIG's radio parameters, so config overrides that keep the
    same ``lora`` produce the identical connectivity graph."""
    positions, stats = connected_placement_large(n, seed)
    net = MeshNetwork.from_positions(
        positions, config=config, seed=seed, trace_enabled=False
    )
    start = time.perf_counter()
    convergence = net.run_until_converged(timeout_s=86400.0, check_period_s=120.0)
    wall_s = time.perf_counter() - start
    return {
        "n": n,
        "diameter": stats.diameter,
        "convergence_s": convergence,
        "wall_s": wall_s,
        "control_frames": net.total_frames_sent(),
        "control_bytes": net.total_bytes_sent(),
        "airtime_s": net.total_airtime_s(),
    }


def measure_large_sharded(
    n: int,
    seed: int,
    *,
    shards: int,
    workers: int,
    window_s: float = 5.0,
    config: MesherConfig = LARGE_N_CONFIG,
):
    """One large-N point through the sharded runner (same placement and
    convergence cadence as :func:`measure_large`).  ``window_s=5`` is the
    measured operating point where windowed visibility keeps routing
    behaviour at serial parity (see ``check_shard_fingerprints.py``)."""
    from repro.sim.shard import run_sharded

    positions, stats = connected_placement_large(n, seed)
    start = time.perf_counter()
    result = run_sharded(
        positions,
        shards=shards,
        workers=workers,
        config=config,
        seed=seed,
        window_s=window_s,
        converge_timeout_s=86400.0,
        check_period_s=120.0,
    )
    wall_s = time.perf_counter() - start
    return {
        "n": n,
        "diameter": stats.diameter,
        "convergence_s": result.convergence_s,
        "wall_s": wall_s,
        "control_frames": result.frames,
        "control_bytes": result.bytes,
        "airtime_s": result.airtime_s,
        "boundary_exports": result.boundary_exports,
        "load_imbalance": result.load_imbalance(),
        "shard_busy_s": [round(s.busy_s, 2) for s in result.stats],
    }


def measure_point(n: int):
    """Module-level fixed-seed point so the sweep can run in worker
    processes (``REPRO_BENCH_WORKERS``)."""
    return measure(n, seed=5)


def test_e4_convergence_vs_network_size(benchmark):
    sizes = (2, 4, 8, 12, 16, 24)
    results = benchmark.pedantic(
        lambda: run_parallel(sizes, measure_point, workers=BENCH_WORKERS),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r["n"],
            r["diameter"],
            f"{r['convergence_s']:.0f}" if r["convergence_s"] is not None else "timeout",
            r["control_frames"],
            r["control_bytes"],
            f"{r['airtime_s']:.2f}",
        )
        for r in results
    ]
    print_table(
        ["nodes", "diameter", "convergence (s)", "hello frames", "hello bytes", "airtime (s)"],
        rows,
        title="E4: cold-start convergence vs network size (random connected placements)",
    )

    # Shape: everything converged.
    assert all(r["convergence_s"] is not None for r in results)
    # Control bytes grow superlinearly with N (table rows scale with N^2
    # across the whole network).
    small, large = results[1], results[-1]
    bytes_ratio = large["control_bytes"] / max(small["control_bytes"], 1)
    n_ratio = large["n"] / small["n"]
    assert bytes_ratio > n_ratio, (
        f"control bytes grew x{bytes_ratio:.1f} for x{n_ratio:.1f} nodes"
    )
    # Convergence bounded by a few hello periods times the diameter.
    for r in results:
        if r["diameter"] > 0:
            assert r["convergence_s"] < (r["diameter"] + 4) * 2 * BENCH_CONFIG.hello_period_s


def _check_large_point(r):
    print_table(
        ["nodes", "diameter", "convergence (s)", "wall (s)", "hello frames", "hello bytes"],
        [
            (
                r["n"],
                r["diameter"],
                f"{r['convergence_s']:.0f}" if r["convergence_s"] is not None else "timeout",
                f"{r['wall_s']:.1f}",
                r["control_frames"],
                r["control_bytes"],
            )
        ],
        title=f"E4 large-N: {r['n']} nodes under LARGE_N_CONFIG",
    )
    assert r["convergence_s"] is not None, "large-N placement failed to converge"
    # Information crosses a couple of hops per hello period, so full
    # convergence lands within a few diameters' worth of periods.
    assert r["convergence_s"] < (r["diameter"] + 4) * 2 * LARGE_N_CONFIG.hello_period_s


def test_e4_large_n_100(benchmark):
    result = benchmark.pedantic(lambda: measure_large(100, seed=5), rounds=1, iterations=1)
    _check_large_point(result)


def test_e4_large_n_300_smoke(benchmark):
    """Perf-smoke scale point: large enough that the columnar routing
    plane (vectorized DV merges + covers_all convergence probes) carries
    real weight, small enough for every CI run.  Guarded by the perf
    regression gate against BENCH_perf_baseline.json."""
    result = benchmark.pedantic(lambda: measure_large(300, seed=5), rounds=1, iterations=1)
    _check_large_point(result)


def test_e4_sharded_n300_smoke(benchmark):
    """Perf-smoke point for the sharded runner: the n=300 workload split
    into two strips with two worker processes.  Guards the whole
    shard-coordination path (partitioning, window barriers, ghost
    exchange over pipes, merged convergence checks) against wall-clock
    regressions alongside the serial n=300 point."""
    result = benchmark.pedantic(
        lambda: measure_large_sharded(300, seed=5, shards=2, workers=2),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["nodes", "diameter", "convergence (s)", "wall (s)", "frames", "boundary exports", "imbalance"],
        [
            (
                result["n"],
                result["diameter"],
                f"{result['convergence_s']:.0f}",
                f"{result['wall_s']:.1f}",
                result["control_frames"],
                result["boundary_exports"],
                f"{result['load_imbalance']:.2f}",
            )
        ],
        title="E4 sharded smoke: 300 nodes, 2 strips x 2 workers",
    )
    assert result["convergence_s"] is not None, "sharded n=300 failed to converge"
    assert result["boundary_exports"] > 0, "strips never exchanged a boundary frame"
    assert result["convergence_s"] < (result["diameter"] + 4) * 2 * LARGE_N_CONFIG.hello_period_s


@pytest.mark.slow
def test_e4_large_n_300(benchmark):
    result = benchmark.pedantic(lambda: measure_large(300, seed=5), rounds=1, iterations=1)
    _check_large_point(result)


@pytest.mark.slow
def test_e4_large_n_1000(benchmark):
    """The headline scale point: 1000 nodes, random connected placement,
    cold start to full convergence.  Infeasible before the batch PHY
    engine; the wall-clock guard is deliberately loose (CI hardware
    varies) — BENCH_perf.json records the measured numbers."""
    result = benchmark.pedantic(lambda: measure_large(1000, seed=5), rounds=1, iterations=1)
    _check_large_point(result)
    assert result["wall_s"] < 1800.0


@pytest.mark.slow
def test_e4_large_n_5000(benchmark):
    """First 5000-node convergence point (columnar routing plane).

    Runs under :data:`XL_N_CONFIG` — the seed-5 placement's 89-hop
    diameter and 81-frame hello trains overflow LARGE_N_CONFIG's
    max_metric/send-queue limits.  81 hello frames per beacon cycle per
    node and 25M table rows at convergence: run manually (`-m slow`),
    expect hours; BENCH_perf.json records the measured numbers."""
    result = benchmark.pedantic(
        lambda: measure_large(5000, seed=5, config=XL_N_CONFIG), rounds=1, iterations=1
    )
    _check_large_point(result)
