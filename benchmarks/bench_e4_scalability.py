"""E4 — Scalability of distance-vector dissemination.

Paper artifact: LoRaMesher targets networks of "tiny IoT nodes"; this
bench characterises how convergence time and control overhead grow with
network size on random connected placements.

Expected shape: convergence time grows with network diameter (roughly
diameter x hello period), and control bytes grow superlinearly in N
(every node advertises every other node).
"""

import random

from benchmarks.conftest import BENCH_CONFIG, BENCH_WORKERS
from repro.experiments.report import print_table
from repro.experiments.sweep import run_parallel
from repro.net.api import MeshNetwork
from repro.phy.link import LinkBudget
from repro.phy.pathloss import LogDistancePathLoss
from repro.topology.graphs import connectivity_graph, graph_stats
from repro.topology.placement import random_positions


def connected_placement(n: int, seed: int):
    """A random placement that is guaranteed radio-connected."""
    budget = LinkBudget(LogDistancePathLoss())
    rng = random.Random(seed)
    side = 110.0 * max(2.0, (n / 2.0) ** 0.5)
    for attempt in range(50):
        positions = random_positions(
            n, width_m=side, height_m=side, rng=rng, min_separation_m=30.0
        )
        graph = connectivity_graph(positions, budget, BENCH_CONFIG.lora)
        stats = graph_stats(graph)
        if stats.connected:
            return positions, stats
    raise RuntimeError(f"no connected {n}-node placement found")


def measure(n: int, seed: int):
    positions, stats = connected_placement(n, seed)
    net = MeshNetwork.from_positions(positions, config=BENCH_CONFIG, seed=seed, trace_enabled=False)
    convergence = net.run_until_converged(timeout_s=7200.0, check_period_s=10.0)
    return {
        "n": n,
        "diameter": stats.diameter,
        "convergence_s": convergence,
        "control_frames": net.total_frames_sent(),
        "control_bytes": net.total_bytes_sent(),
        "airtime_s": net.total_airtime_s(),
    }


def measure_point(n: int):
    """Module-level fixed-seed point so the sweep can run in worker
    processes (``REPRO_BENCH_WORKERS``)."""
    return measure(n, seed=5)


def test_e4_convergence_vs_network_size(benchmark):
    sizes = (2, 4, 8, 12, 16, 24)
    results = benchmark.pedantic(
        lambda: run_parallel(sizes, measure_point, workers=BENCH_WORKERS),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            r["n"],
            r["diameter"],
            f"{r['convergence_s']:.0f}" if r["convergence_s"] is not None else "timeout",
            r["control_frames"],
            r["control_bytes"],
            f"{r['airtime_s']:.2f}",
        )
        for r in results
    ]
    print_table(
        ["nodes", "diameter", "convergence (s)", "hello frames", "hello bytes", "airtime (s)"],
        rows,
        title="E4: cold-start convergence vs network size (random connected placements)",
    )

    # Shape: everything converged.
    assert all(r["convergence_s"] is not None for r in results)
    # Control bytes grow superlinearly with N (table rows scale with N^2
    # across the whole network).
    small, large = results[1], results[-1]
    bytes_ratio = large["control_bytes"] / max(small["control_bytes"], 1)
    n_ratio = large["n"] / small["n"]
    assert bytes_ratio > n_ratio, (
        f"control bytes grew x{bytes_ratio:.1f} for x{n_ratio:.1f} nodes"
    )
    # Convergence bounded by a few hello periods times the diameter.
    for r in results:
        if r["diameter"] > 0:
            assert r["convergence_s"] < (r["diameter"] + 4) * 2 * BENCH_CONFIG.hello_period_s
