"""E3 — Packet formats and their airtime cost.

Paper artifact: the library's packet-structure table.  For each packet
type we report the on-air size and time-on-air across spreading factors,
quantifying what the protocol's control plane costs — the numbers that
justify the default hello period and the fragment size.

Expected shape: airtime roughly doubles per SF step; a full hello (with
many routes) still costs well under a second at SF7.
"""

from benchmarks.conftest import BENCH_CONFIG
from repro.experiments.report import print_table
from repro.net import serialization
from repro.net.packets import (
    AckPacket,
    DataPacket,
    NeedAckPacket,
    RoutingEntry,
    RoutingPacket,
    SyncPacket,
    XLDataPacket,
)
from repro.phy.airtime import time_on_air
from repro.phy.modulation import LoRaParams, SpreadingFactor


def sample_packets():
    routes10 = tuple(RoutingEntry(address=i + 2, metric=i % 5) for i in range(10))
    return [
        ("HELLO (empty table)", RoutingPacket(src=1, entries=())),
        ("HELLO (10 routes)", RoutingPacket(src=1, entries=routes10)),
        ("DATA (24 B payload)", DataPacket(dst=1, src=2, via=3, payload=bytes(24))),
        ("DATA (180 B payload)", DataPacket(dst=1, src=2, via=3, payload=bytes(180))),
        ("NEED_ACK (24 B)", NeedAckPacket(dst=1, src=2, via=3, seq_id=0, number=0, payload=bytes(24))),
        ("ACK", AckPacket(dst=1, src=2, via=3, seq_id=0, number=0)),
        ("SYNC", SyncPacket(dst=1, src=2, via=3, seq_id=0, number=40, total_bytes=7200)),
        ("XL_DATA (180 B frag)", XLDataPacket(dst=1, src=2, via=3, seq_id=0, number=0, payload=bytes(180))),
    ]


def airtime_table():
    rows = []
    for name, packet in sample_packets():
        frame = serialization.encode(packet)
        cells = [name, len(frame)]
        for sf in SpreadingFactor:
            params = LoRaParams(spreading_factor=sf)
            cells.append(round(time_on_air(len(frame), params) * 1000, 1))
        rows.append(tuple(cells))
    return rows


def test_e3_airtime_per_packet_type(benchmark):
    rows = benchmark(airtime_table)
    print_table(
        ["packet", "bytes"] + [f"{sf.name} (ms)" for sf in SpreadingFactor],
        rows,
        title="E3: wire size and time-on-air per packet type (BW125, CR4/5)",
    )

    by_name = {row[0]: row for row in rows}
    # Shape: each SF step roughly doubles airtime (x1.6-2.4).
    hello = by_name["HELLO (10 routes)"]
    for i in range(2, len(hello) - 1):
        ratio = hello[i + 1] / hello[i]
        assert 1.5 < ratio < 2.5
    # A full-ish hello at SF7 costs under 200 ms: cheap enough for the
    # 60-120 s beacon period to stay far below the duty-cycle budget.
    assert by_name["HELLO (10 routes)"][2] < 200
    # The ACK is the smallest of the via-carrying (routed) packets.
    routed = [row for row in rows if not row[0].startswith("HELLO")]
    assert by_name["ACK"][1] == min(row[1] for row in routed)


def test_e3_hello_cost_vs_network_size(benchmark):
    def build():
        rows = []
        for n_routes in (0, 5, 10, 20, 40, 62):
            entries = tuple(RoutingEntry(address=i + 2, metric=1) for i in range(n_routes))
            frame = serialization.encode(RoutingPacket(src=1, entries=entries))
            toa = time_on_air(len(frame), BENCH_CONFIG.lora)
            duty_share = toa / BENCH_CONFIG.hello_period_s
            rows.append((n_routes, len(frame), round(toa * 1000, 1), f"{duty_share * 100:.3f}%"))
        return rows

    rows = benchmark(build)
    print_table(
        ["routes advertised", "bytes", "ToA at SF7 (ms)", "share of duty budget"],
        rows,
        title="E3b: hello cost vs routing-table size (hello every 60 s)",
    )
    # Even the largest single-frame hello stays well under the 1% budget.
    assert all(float(r[3].rstrip("%")) < 1.0 for r in rows)
